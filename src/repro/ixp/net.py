"""``repro.ixp.net`` — a multi-engine packet-streaming runtime.

The paper's measurement context is a line card: six micro-engines drain
receive FIFOs and scratch rings under sustained traffic (Section 11).
The batch driver (:mod:`repro.apps.driver`) closes that loop with a
fixed per-thread packet quota; this module replaces the quota with the
steady-state, queue-coupled regime the paper's throughput numbers live
in:

- **N micro-engines** — N :class:`~repro.ixp.machine.Machine` instances
  interleaved on one global event clock over a *shared*
  :class:`~repro.ixp.memory.MemorySystem`, so engines contend for the
  SRAM/SDRAM/scratch service ports exactly like threads already do
  within one engine (the paper's full chip, 6 engines x 4 threads, is
  the default topology);
- **per-engine RX rings with flow-hash steering** — a dispatch stage
  steers every arriving packet to one engine's private RX ring by a
  hash of its flow key (app-supplied ``flow_key``; NAT keys on the
  source/destination address pair so per-flow ordering is preserved,
  other apps default to a hash of the packet sequence number), then a
  shared TX ring carries finished descriptors to the transmit sink;
  every enqueue/dequeue is a single-word scratch transfer (port
  occupancy + latency), a full target ring drops at dispatch (tail
  drop) and a full TX ring *backpressures* workers;
- **a seeded traffic source** — configurable arrival process (poisson /
  constant / backlog), payload-size distribution and burst factor;
- **a validating TX sink** — every drained packet is checked word for
  word against the application's pure-Python reference implementation
  (results *and* the packet's SDRAM region);
- **observability** — per-packet latency (arrival → drain) with a log2
  histogram, throughput, queue-depth high-water marks and drop rates,
  emitted as ``net.*`` trace spans and via ``novac pump``.

Scheduling model
----------------

A single global event heap orders four actors — arrivals, the dispatch
stage, workers (one per hardware thread per engine), and the sink — by
cycle time.  Each engine keeps its own clock (engines run in parallel
in hardware); a worker slice runs its thread through the engine's
existing stepping primitives (:meth:`Machine.service`) from
``max(engine clock, event time)``.  The dispatch stage reserves room in
the steered engine's ring at arrival (or tail-drops) and performs the
actual ring push ``dispatch_cycles`` later — the descriptor only
becomes pollable once the push lands, so worker *retirement* must not
key on ring emptiness alone: a worker goes dormant only when the
source is done **and** nothing steered to its engine is still queued
or in the dispatch stage (``pending``), the condition under which no
packet can ever reach its ring.  Worker ring interaction happens at
the scheduling layer: a thread that finishes a packet (halt) enqueues
its descriptor on the TX ring and dequeues the next from its engine's
RX ring, paying the ring's scratch-port costs; an empty RX or full TX
re-polls every ``poll`` cycles.  This is the receive/transmit
scheduler glue the paper says ships with every application —
hand-written ring code can use the ``ring.enq`` / ``ring.deq``
instructions directly (see ``docs/NETWORKING.md``).

Whole-chip scale-out: :func:`run_sharded` runs N independent chips
(each a full 6x4 :class:`NetRuntime`) over the :mod:`repro.batch`
process pool with per-chip seeds, aggregating the per-chip
:class:`StreamResult`\\ s into one deployment-level report.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.errors import SimulatorError
from repro.ixp.machine import CLOCK_MHZ, SIM_MODES, Machine, hash48
from repro.ixp.memory import MemorySystem
from repro.trace import ensure, log2_bound

#: event kinds on the global heap (tie-broken by sequence number).
_EV_ARRIVE, _EV_WORKER, _EV_SINK, _EV_PUSH = 0, 1, 2, 3

#: recognised dispatch-steering policies.
STEER_MODES = ("flow", "rr")

#: recognised seeded arrival processes (a trace-driven source bypasses
#: the arrival process entirely — see :class:`TraceEvent`).
ARRIVAL_MODES = ("poisson", "constant", "backlog")


@dataclass(frozen=True)
class TraceEvent:
    """One packet of a replayable traffic trace.

    A trace is an explicit schedule the source replays instead of
    drawing from its seeded RNG: ``gap`` cycles after the previous
    arrival (the first event is relative to cycle 0) a packet with
    exactly ``payload`` arrives at the dispatch stage.  ``flow`` pins
    the packet's flow identity — captured traces always record it so
    deleting events from a trace (ddmin shrinking) never changes how
    the survivors steer.  ``flow=None`` falls back to the app's
    ``flow_key`` (or the hash-of-sequence default), which *does* depend
    on the packet's position in the trace.
    """

    gap: int
    flow: int | None
    payload: tuple[int, ...]
    #: on-the-wire size; ``None`` means ``4 * len(payload)``.
    payload_bytes: int | None = None

    @property
    def size_bytes(self) -> int:
        return (
            self.payload_bytes
            if self.payload_bytes is not None
            else 4 * len(self.payload)
        )


@dataclass
class NetConfig:
    """Streaming-run parameters (all cycle values in engine cycles).

    The defaults are the paper's full chip: 6 micro-engines x 4
    hardware threads, each engine with a private RX ring fed by the
    flow-hash dispatch stage.
    """

    engines: int = 6
    #: hardware threads per engine.
    threads: int = 4
    #: capacity of each engine's private RX ring.
    rx_capacity: int = 32
    tx_capacity: int = 32
    #: packet budget: the source stops after this many packets.
    packets: int = 64
    #: cycle budget: the run stops scheduling past this time (None =
    #: run until every packet is drained or dropped).
    max_cycles: int | None = None
    seed: int = 0
    #: arrival process: 'poisson' (exponential gaps), 'constant', or
    #: 'backlog' (every packet arrives at cycle 0 — closed loop).
    arrival: str = "poisson"
    #: mean cycles between bursts (poisson/constant).
    mean_gap: float = 64.0
    #: packets per burst.
    burst: int = 1
    #: minimum cycles between TX-sink drains (0 = line rate unlimited).
    sink_gap: int = 0
    #: re-poll interval for idle workers (empty RX) and backpressured
    #: workers (full TX).
    poll: int = 16
    #: dispatch policy: 'flow' steers by a hash of the packet's flow
    #: key (same flow -> same engine), 'rr' round-robins by sequence.
    steer: str = "flow"
    #: cycles between a packet's arrival at the receive unit and its
    #: descriptor's ring push landing (the dispatch stage's steering +
    #: descriptor-write latency; the descriptor is pollable only then).
    dispatch_cycles: int = 8
    #: run the pre-decoded execution path (False = interpreter).
    decode: bool = True
    #: simulator speed tier for the engines ("interp", "decoded" or
    #: "compiled"); ``None`` keeps the older ``decode`` switch.
    sim_mode: str | None = None
    #: explicit traffic trace: when set the source replays these events
    #: verbatim (``arrival``/``mean_gap``/``burst``/``packets``/``seed``
    #: no longer shape the traffic) via the app's ``replay`` constructor.
    trace: tuple[TraceEvent, ...] | None = None


@dataclass
class StreamPacket:
    """One packet's life: payload, expectations, and timeline."""

    seq: int
    payload_words: list[int]
    payload_bytes: int
    #: per-packet source-level input overrides (never includes base).
    inputs: dict[str, int]
    expected_results: tuple[int, ...]
    expected_words: list[int]
    arrival: int = 0
    slot: int | None = None
    #: flow identity (the app's flow key, or a hash of ``seq``).
    flow: int = 0
    #: steered engine — fixed by the dispatch stage at arrival.
    engine: int = -1
    thread: int = -1
    rx_ready: int = 0
    dispatched: int = 0
    halted: int = 0
    tx_ready: int = 0
    drained: int = 0
    latency: int = -1
    #: times the worker found the TX ring full (backpressure events).
    tx_stalls: int = 0
    results: tuple[int, ...] = ()
    status: str = "new"  # new|queued|inflight|done|mismatch|dropped


@dataclass
class StreamApp:
    """A compiled application bound to the streaming runtime."""

    name: str
    bundle: object  # AppBundle
    comp: object  # Compilation (virtual or allocated)
    #: SDRAM words per packet slot (stride is rounded up to even).
    slot_words: int
    #: (rng, seq) -> StreamPacket with payload + expectations filled.
    generate: Callable[[random.Random, int], StreamPacket]
    #: packet -> flow identity for dispatch steering (same key -> same
    #: engine); ``None`` defaults to a hash of the packet sequence.
    flow_key: Callable[[StreamPacket], int] | None = None
    #: (seq, TraceEvent) -> StreamPacket rebuilt from the event's
    #: payload (expectations recomputed from the reference
    #: implementation); required for trace-driven runs.
    replay: Callable[[int, TraceEvent], StreamPacket] | None = None


@dataclass
class StreamResult:
    """Everything a streaming run observed."""

    app: str
    config: NetConfig
    generated: int
    completed: int
    dropped: int
    mismatches: list[dict]
    #: end-to-end makespan: last drain / busiest engine clock.
    cycles: int
    latencies: list[int]
    #: payload bits of *completed* packets (throughput numerator).
    payload_bits: int
    #: deepest occupancy across all per-engine RX rings.
    rx_high_water: int
    tx_high_water: int
    engine_cycles: list[int]
    engine_instructions: list[int]
    #: packets still queued or on an engine when the run stopped (only
    #: non-zero on ``max_cycles`` truncation); the conservation law
    #: ``generated == completed + dropped + inflight`` always holds.
    inflight: int = 0
    truncated: bool = False
    #: per-engine RX ring high-water marks / tail drops / steered counts.
    rx_high_waters: list[int] = field(default_factory=list)
    rx_drops: list[int] = field(default_factory=list)
    steered: list[int] = field(default_factory=list)
    packets: list[StreamPacket] = field(default_factory=list, repr=False)

    @property
    def mbps(self) -> float:
        """Payload megabits per second at the IXP1200 clock."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (CLOCK_MHZ * 1e6)
        return self.payload_bits / seconds / 1e6

    @property
    def drop_rate(self) -> float:
        if self.generated == 0:
            return 0.0
        return self.dropped / self.generated

    def percentile(self, p: float) -> int:
        """Nearest-rank latency percentile (cycles); -1 if no packets.

        ``p`` must lie in [0, 100].  ``p == 0`` is defined as the
        minimum and ``p == 100`` as the maximum; in between the rank is
        ``ceil(n * p / 100)``, computed with exact rational arithmetic
        so a float ``p`` can never drift the rank across a boundary.
        """
        return nearest_rank(self.latencies, p)

    def latency_histogram(self) -> dict[int, int]:
        """Log2 buckets: upper bound (cycles) → packet count.

        Bucketing is :func:`repro.trace.log2_bound` — the same helper
        trace spans use — so run summaries and ``net.run`` span
        histograms agree bucket for bucket (values <= 1 land in bucket
        1, exact powers of two in their own bound).
        """
        hist: dict[int, int] = {}
        for latency in self.latencies:
            bound = log2_bound(latency)
            hist[bound] = hist.get(bound, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> dict:
        return {
            "app": self.app,
            "engines": self.config.engines,
            "threads": self.config.threads,
            "generated": self.generated,
            "completed": self.completed,
            "dropped": self.dropped,
            "inflight": self.inflight,
            "mismatches": len(self.mismatches),
            "cycles": self.cycles,
            "mbps": round(self.mbps, 3),
            "latency_p50": self.percentile(50),
            "latency_p95": self.percentile(95),
            "latency_max": max(self.latencies, default=-1),
            "rx_high_water": self.rx_high_water,
            "tx_high_water": self.tx_high_water,
            "truncated": self.truncated,
        }


def nearest_rank(latencies: list[int], p: float) -> int:
    """Exact nearest-rank percentile over ``latencies``; -1 when empty.

    Shared by :class:`StreamResult` and :class:`ShardedResult`.  The
    rank ``ceil(n * p / 100)`` is evaluated over :class:`~fractions.
    Fraction` (exact for both int and float ``p``), with ``p == 0``
    pinned to the minimum — the old ``max(1, ...)`` clamp silently
    aliased p=0 onto rank 1, and float multiplication could drift the
    floor-division across a rank boundary.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not latencies:
        return -1
    ordered = sorted(latencies)
    if p == 0:
        return ordered[0]
    n = len(ordered)
    scaled = Fraction(p) * n  # exact: Fraction(float) has no rounding
    rank = -(-scaled.numerator // (scaled.denominator * 100))  # ceil
    return ordered[min(n, rank) - 1]


def capture_trace(result: StreamResult) -> tuple[TraceEvent, ...]:
    """The traffic of a finished run as a replayable trace.

    Gaps are reconstructed from per-packet arrival times and every
    event records its packet's flow identity explicitly, so replaying
    the trace through :func:`run_stream` (``NetConfig.trace``)
    reproduces the run's traffic exactly — on the original topology or
    any other — and shrinking the trace cannot re-steer survivors.
    Requires the run to have kept its packets (``result.packets``).
    """
    if result.generated and not result.packets:
        raise ValueError("run kept no packets; cannot capture its trace")
    events = []
    previous = 0
    for packet in result.packets:
        events.append(
            TraceEvent(
                gap=packet.arrival - previous,
                flow=packet.flow,
                payload=tuple(packet.payload_words),
                payload_bytes=packet.payload_bytes,
            )
        )
        previous = packet.arrival
    return tuple(events)


def coverage_signature(result: StreamResult) -> tuple[str, ...]:
    """Stable coverage features of one streaming run.

    The net fuzzer's corpus layer (:mod:`repro.fuzz.corpus`) retains a
    scenario iff its run lights up a counter bucket no stored entry
    reached; this function defines those buckets from the runtime's own
    accounting, so "interesting" means *the queues behaved differently*,
    not merely "the trace differs":

    - the topology itself (engine/thread counts, ring capacities, steer
      mode) — a trace replayed on a new topology is new coverage;
    - per-ring RX high-water marks, tail drops and steered counts in
      :func:`repro.trace.log2_bound` buckets;
    - the shared TX ring's high water, total backpressure stalls
      (workers finding the TX ring full) and total drops;
    - the latency-histogram *shape*: each occupied log2 latency bucket
      paired with the log2 bucket of its packet count;
    - truncation / in-flight leftovers (``max_cycles`` runs).

    The result is a sorted tuple of short feature strings — identical
    seeded runs produce identical signatures, and the tuple is stable
    across sessions so stored corpora stay comparable.  Tests pin the
    exact format (:mod:`tests.test_corpus`); change it only with a
    migration story for on-disk corpora.
    """
    config = result.config
    features = {
        f"topo:e{config.engines}xt{config.threads}"
        f":rx{config.rx_capacity}:tx{config.tx_capacity}"
        f":{config.steer}:d{config.dispatch_cycles}",
    }
    for engine in range(config.engines):
        if engine < len(result.rx_high_waters) and result.rx_high_waters[engine]:
            features.add(
                f"rx{engine}.hwm<={log2_bound(result.rx_high_waters[engine])}"
            )
        if engine < len(result.rx_drops) and result.rx_drops[engine]:
            features.add(
                f"rx{engine}.drops<={log2_bound(result.rx_drops[engine])}"
            )
        if engine < len(result.steered) and result.steered[engine]:
            features.add(
                f"rx{engine}.steered<={log2_bound(result.steered[engine])}"
            )
    if result.tx_high_water:
        features.add(f"tx.hwm<={log2_bound(result.tx_high_water)}")
    stalls = sum(p.tx_stalls for p in result.packets)
    if stalls:
        features.add(f"tx.stalls<={log2_bound(stalls)}")
    if result.dropped:
        features.add(f"dropped<={log2_bound(result.dropped)}")
    for bound, count in result.latency_histogram().items():
        features.add(f"lat<={bound}x{log2_bound(count)}")
    if result.truncated:
        features.add("truncated")
    if result.inflight:
        features.add(f"inflight<={log2_bound(result.inflight)}")
    return tuple(sorted(features))


def trace_to_json(trace: tuple[TraceEvent, ...]) -> list:
    """A trace as plain JSON rows ``[gap, flow, payload, bytes]``."""
    return [
        [event.gap, event.flow, list(event.payload), event.payload_bytes]
        for event in trace
    ]


def trace_from_json(rows: list) -> tuple[TraceEvent, ...]:
    """Inverse of :func:`trace_to_json`."""
    return tuple(
        TraceEvent(
            gap=gap,
            flow=flow,
            payload=tuple(payload),
            payload_bytes=payload_bytes,
        )
        for gap, flow, payload, payload_bytes in rows
    )


def config_to_dict(config: NetConfig) -> dict:
    """A :class:`NetConfig` as a plain JSON topology dict (no trace).

    The traffic trace is serialized separately (:func:`trace_to_json`)
    — witness artifacts and corpus entries store topology and traffic
    as distinct, independently swappable axes.
    """
    from dataclasses import asdict

    return {k: v for k, v in asdict(config).items() if k != "trace"}


def config_from_dict(data: dict) -> NetConfig:
    """Inverse of :func:`config_to_dict`; unknown keys are rejected."""
    return NetConfig(**{k: v for k, v in data.items() if k != "trace"})


def memory_digest(memory: MemorySystem) -> str:
    """Stable short digest of every non-zero word in every space."""
    sha = hashlib.sha256()
    for name in sorted(memory.spaces):
        words = memory.spaces[name].words
        for addr in sorted(words):
            if words[addr]:
                sha.update(f"{name}:{addr}:{words[addr]};".encode())
    return sha.hexdigest()[:16]


# --------------------------------------------------------------------------
# Application adapters
# --------------------------------------------------------------------------


def _to_words(data: bytes) -> list[int]:
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]


def _rand_bytes(rng: random.Random, count: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(count))


def _event_bytes(event: TraceEvent) -> bytes:
    data = b"".join(word.to_bytes(4, "big") for word in event.payload)
    return data[: event.size_bytes]


def _aes_stream_app(comp, payload_sizes: tuple[int, ...]) -> StreamApp:
    from repro.apps.aes_nova import (
        aes_reference_checksum,
        aes_reference_ciphertext,
        build_aes_app,
    )

    for size in payload_sizes:
        if size <= 0 or size % 16:
            raise ValueError(f"AES payloads are 16-byte blocks, got {size}")
    bundle = build_aes_app()

    def from_payload(seq: int, payload: bytes) -> StreamPacket:
        return StreamPacket(
            seq=seq,
            payload_words=_to_words(payload),
            payload_bytes=len(payload),
            inputs={"nblocks": len(payload) // 16, "align": 0},
            expected_results=(aes_reference_checksum(payload),),
            expected_words=aes_reference_ciphertext(payload),
        )

    def generate(rng: random.Random, seq: int) -> StreamPacket:
        size = payload_sizes[rng.randrange(len(payload_sizes))]
        return from_payload(seq, _rand_bytes(rng, size))

    def replay(seq: int, event: TraceEvent) -> StreamPacket:
        return from_payload(seq, _event_bytes(event))

    return StreamApp(
        "aes", bundle, comp, max(payload_sizes) // 4, generate, replay=replay
    )


def _kasumi_stream_app(comp, payload_sizes: tuple[int, ...]) -> StreamApp:
    from repro.apps.kasumi_nova import (
        build_kasumi_app,
        kasumi_reference_ciphertext,
        kasumi_reference_sum,
    )

    for size in payload_sizes:
        if size <= 0 or size % 8:
            raise ValueError(f"Kasumi payloads are 8-byte blocks, got {size}")
    bundle = build_kasumi_app()

    def from_payload(seq: int, payload: bytes) -> StreamPacket:
        return StreamPacket(
            seq=seq,
            payload_words=_to_words(payload),
            payload_bytes=len(payload),
            inputs={"nblocks": len(payload) // 8},
            expected_results=(kasumi_reference_sum(payload),),
            expected_words=kasumi_reference_ciphertext(payload),
        )

    def generate(rng: random.Random, seq: int) -> StreamPacket:
        size = payload_sizes[rng.randrange(len(payload_sizes))]
        return from_payload(seq, _rand_bytes(rng, size))

    def replay(seq: int, event: TraceEvent) -> StreamPacket:
        return from_payload(seq, _event_bytes(event))

    return StreamApp(
        "kasumi", bundle, comp, max(payload_sizes) // 4, generate, replay=replay
    )


def _nat_stream_mappings(count: int = 8) -> dict[tuple[int, int, int, int], int]:
    """``count`` IPv6 → IPv4 mappings with distinct table indexes (the
    table is direct-mapped; colliding addresses would evict each other)."""
    from repro.apps.refimpl import nat

    mappings: dict[tuple[int, int, int, int], int] = {}
    used: set[int] = set()
    host = 0
    while len(mappings) < count:
        host += 1
        addr = (0x20010DB8, 0, 0x5EED, host)
        index = nat.nat_table_index(list(addr))
        if index in used:
            continue
        used.add(index)
        mappings[addr] = 0x0A000000 + len(mappings) + 1
    return mappings


def _nat_stream_app(comp) -> StreamApp:
    from repro.apps.nat_nova import build_nat_app
    from repro.apps.refimpl import nat

    mappings = _nat_stream_mappings()
    bundle = build_nat_app(mappings=mappings)
    table = nat.build_nat_table(mappings)
    addresses = list(mappings)

    def from_words(seq: int, words: list[int]) -> StreamPacket:
        header = nat.translate_ipv6_to_ipv4(words, table)
        return StreamPacket(
            seq=seq,
            payload_words=list(words),
            payload_bytes=40,  # the translated IPv6 header
            inputs={},
            expected_results=(header[2] & 0xFFFF,),
            expected_words=words[:5] + header,
        )

    def generate(rng: random.Random, seq: int) -> StreamPacket:
        src = addresses[rng.randrange(len(addresses))]
        dst = addresses[rng.randrange(len(addresses))]
        tclass = rng.getrandbits(8)
        flow = rng.getrandbits(20)
        payload_length = rng.randrange(0, 1024)
        next_header = rng.getrandbits(8)
        hop = rng.randrange(1, 256)
        w0 = (6 << 28) | (tclass << 20) | flow
        w1 = (payload_length << 16) | (next_header << 8) | hop
        return from_words(seq, [w0, w1, *src, *dst])

    def replay(seq: int, event: TraceEvent) -> StreamPacket:
        return from_words(seq, list(event.payload))

    def flow_key(packet: StreamPacket) -> int:
        # The translation 5-tuple stand-in: the source/destination
        # address pair (words 2..9 of the IPv6 header).  Same pair ->
        # same key -> same engine, so per-flow order survives steering.
        key = 0
        for word in packet.payload_words[2:10]:
            key = hash48(key ^ word)
        return key

    return StreamApp("nat", bundle, comp, 10, generate, flow_key, replay)


def stream_app(
    name: str, comp, payload_sizes: tuple[int, ...] | None = None
) -> StreamApp:
    """Build the streaming adapter for one of the Section 11 apps.

    ``comp`` may be a virtual (pre-allocation) or allocated
    compilation of the app's bundled source; ``payload_sizes`` is the
    payload-size distribution for AES (multiples of 16) and Kasumi
    (multiples of 8) — NAT packets are always one 40-byte header.
    """
    if name == "aes":
        return _aes_stream_app(comp, payload_sizes or (16,))
    if name == "kasumi":
        return _kasumi_stream_app(comp, payload_sizes or (8,))
    if name == "nat":
        return _nat_stream_app(comp)
    raise ValueError(f"unknown streaming app '{name}'")


# --------------------------------------------------------------------------
# The runtime
# --------------------------------------------------------------------------


class NetRuntime:
    """One streaming run: build with an adapter + config, call :meth:`run`."""

    def __init__(self, app: StreamApp, config: NetConfig, tracer=None):
        self._validate_config(app, config)
        self.app = app
        self.comp = app.comp
        self.config = config
        self.tracer = ensure(tracer)
        self.rng = random.Random(config.seed)

        self.memory = MemorySystem.create()
        bundle = app.bundle
        for space, chunks in bundle.memory_image.items():
            for addr, words in chunks:
                if space == "sdram" and addr >= bundle.payload_base:
                    continue  # payloads are written per slot on arrival
                self.memory[space].load_words(addr, words)
        # Ring layout, downward from the top of scratch: the shared TX
        # ring, then one private RX ring per engine ("rx0".."rxN-1").
        scratch = self.memory["scratch"]
        tx_base = scratch.size - (2 + config.tx_capacity)
        rx_base = tx_base - config.engines * (2 + config.rx_capacity)
        self._check_ring_layout(rx_base, scratch.size)
        self.rx = self.memory.add_ring_group(
            "rx", rx_base, config.rx_capacity, config.engines
        )
        self.tx = self.memory.add_ring("tx", tx_base, config.tx_capacity)

        physical = self.comp.alloc is not None
        graph = self.comp.physical if physical else self.comp.flowgraph
        # The runtime enforces config.max_cycles at the event level (a
        # clean truncated result); the machines get headroom beyond it
        # so an in-flight slice never trips their internal guard first.
        machine_budget = (
            config.max_cycles * 4 + 1_000_000
            if config.max_cycles is not None
            else 1_000_000_000
        )
        self.machines = [
            Machine(
                graph,
                memory=self.memory,
                threads=config.threads,
                physical=physical,
                input_provider=lambda tid, it: None,  # runtime dispatches
                max_cycles=machine_budget,
                decode=config.decode,
                mode=config.sim_mode,
            )
            for _ in range(config.engines)
        ]
        self.engine_clock = [0] * config.engines

        workers = config.engines * config.threads
        self.worker_state = ["idle"] * workers
        self.worker_packet: list[StreamPacket | None] = [None] * workers

        #: packets steered to each engine and not yet pulled by one of
        #: its workers (queued in the ring OR still in the dispatch
        #: stage).  Retirement keys on this, not on ring emptiness.
        self.pending = [0] * config.engines
        #: dispatch pushes reserved but not yet landed, per engine.
        self.rx_inflight = [0] * config.engines
        #: tail drops at dispatch, per target engine.
        self.rx_drops = [0] * config.engines
        #: packets steered per engine (including later drops).
        self.steered = [0] * config.engines

        #: enough buffer slots that ring bounds, not slot exhaustion,
        #: limit the number of in-flight packets.
        self.slot_count = (
            config.engines * config.rx_capacity
            + workers
            + config.tx_capacity
            + 2
        )
        self.slot_stride = app.slot_words + (app.slot_words % 2)
        self.free_slots: deque[int] = deque(range(self.slot_count))
        self.slot_packet: dict[int, StreamPacket] = {}

        self.packets: list[StreamPacket] = []
        self.generated = 0
        self.completed = 0
        self.dropped = 0
        self.accounted = 0
        self.mismatches: list[dict] = []
        self.latencies: list[int] = []
        self.payload_bits = 0
        self.source_done = False
        self.truncated = False
        self.end_cycle = 0
        self.sink_next_free = 0
        self.sink_scheduled = False

        self._heap: list[tuple[int, int, int, int]] = []
        self._seq = 0
        #: next trace event to replay (trace-driven source only).
        self._trace_index = 0
        #: generated programs have no per-packet SDRAM slot parameter.
        self._has_base = "base" in self.comp.inputs_by_name()

    # -- config validation ---------------------------------------------------

    @staticmethod
    def _validate_config(app: StreamApp, config: NetConfig) -> None:
        """Reject bad topologies/sources up front, before any state is
        built — a typo'd arrival process used to surface only deep in
        :meth:`_gap` after the first burst fired."""
        if config.engines <= 0 or config.threads <= 0:
            raise ValueError("need at least one engine and one thread")
        if config.sim_mode is not None and config.sim_mode not in SIM_MODES:
            raise ValueError(
                f"unknown simulator mode '{config.sim_mode}' "
                f"(expected one of {', '.join(SIM_MODES)})"
            )
        if config.steer not in STEER_MODES:
            raise ValueError(
                f"unknown steering policy '{config.steer}' "
                f"(expected one of {STEER_MODES})"
            )
        if config.dispatch_cycles < 0:
            raise ValueError("dispatch_cycles must be >= 0")
        if config.rx_capacity <= 0 or config.tx_capacity <= 0:
            raise ValueError(
                "ring capacities must be positive, got "
                f"rx_capacity={config.rx_capacity} "
                f"tx_capacity={config.tx_capacity}"
            )
        if config.poll <= 0:
            raise ValueError(
                f"poll must be >= 1 (idle workers re-poll), got {config.poll}"
            )
        if config.trace is not None:
            if app.replay is None:
                raise ValueError(
                    f"app '{app.name}' has no replay constructor; "
                    "trace-driven runs need StreamApp.replay"
                )
            for index, event in enumerate(config.trace):
                if event.gap < 0:
                    raise ValueError(
                        f"trace event {index} has negative gap {event.gap}"
                    )
            return  # the seeded-source knobs below don't shape traffic
        if config.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival process '{config.arrival}' "
                f"(expected one of {ARRIVAL_MODES})"
            )
        if config.arrival != "backlog" and config.mean_gap <= 0:
            raise ValueError(
                f"mean_gap must be > 0, got {config.mean_gap}"
            )
        if config.burst <= 0:
            raise ValueError(f"burst must be >= 1, got {config.burst}")

    def _check_ring_layout(self, rx_base: int, scratch_size: int) -> None:
        """Reject ring layouts that fall off the bottom of scratch or
        underflow into the program's own scratch data / spill slots.

        The rings grow downward from the top of scratch, so a large
        ``engines x rx_capacity`` product used to push ``rx_base``
        into program data (silent corruption) or negative (an opaque
        ring-construction error)."""
        data_top = 0
        for addr, words in self.app.bundle.memory_image.get("scratch", ()):
            data_top = max(data_top, addr + len(words))
        if self.comp.alloc is not None:
            slots = self.comp.alloc.decoded.spill_slots
            if slots:
                data_top = max(data_top, max(slots.values()) + 1)
        if rx_base < data_top:
            config = self.config
            need = scratch_size - rx_base
            raise ValueError(
                f"ring layout does not fit scratch: {config.engines} RX "
                f"rings of {config.rx_capacity} + a TX ring of "
                f"{config.tx_capacity} need {need} words but only "
                f"{scratch_size - data_top} are free above the program's "
                f"data (top {data_top}); shrink the rings or the engine "
                "count"
            )

    # -- event plumbing -----------------------------------------------------

    def _push(self, time: int, kind: int, data: int = 0) -> None:
        heapq.heappush(self._heap, (time, self._seq, kind, data))
        self._seq += 1

    def _slot_base(self, slot: int) -> int:
        return self.app.bundle.payload_base + slot * self.slot_stride

    def _gap(self) -> int:
        config = self.config
        if config.arrival == "poisson":
            return max(1, round(self.rng.expovariate(1.0 / config.mean_gap)))
        if config.arrival == "constant":
            return max(1, round(config.mean_gap))
        raise ValueError(f"unknown arrival process '{config.arrival}'")

    # -- actors --------------------------------------------------------------

    def _flow_of(self, packet: StreamPacket) -> int:
        if self.app.flow_key is not None:
            return self.app.flow_key(packet) & 0xFFFFFFFF
        return hash48(packet.seq)

    def _steer(self, packet: StreamPacket) -> int:
        """The dispatch stage's engine choice for ``packet``."""
        if self.config.steer == "rr":
            return packet.seq % self.config.engines
        return hash48(packet.flow) % self.config.engines

    def _admit(
        self, packet: StreamPacket, now: int, flow: int | None = None
    ) -> None:
        """The dispatch stage sees one arriving packet: steer it,
        reserve ring room (or tail-drop), DMA the payload into its
        slot and schedule the descriptor push.  ``flow`` pins the
        packet's flow identity (trace replay); ``None`` derives it
        from the app's flow key."""
        packet.arrival = now
        self.generated += 1
        self.packets.append(packet)
        packet.flow = self._flow_of(packet) if flow is None else flow
        engine = self._steer(packet)
        packet.engine = engine
        self.steered[engine] += 1
        ring = self.rx[engine]
        # Reserve ring room at arrival (counting pushes still in
        # the dispatch stage); tail-drop when the *steered* ring is
        # full — other engines' rings having room doesn't help a
        # flow pinned to this one.
        room = ring.capacity - ring.depth() - self.rx_inflight[engine]
        if room <= 0 or not self.free_slots:
            packet.status = "dropped"
            self.dropped += 1
            self.rx_drops[engine] += 1
            self.accounted += 1
            return
        slot = self.free_slots.popleft()
        packet.slot = slot
        # The receive unit DMAs the payload into the slot's SDRAM
        # region (back door — its bus is not the engines' port).
        self.memory["sdram"].load_words(
            self._slot_base(slot), packet.payload_words
        )
        packet.status = "queued"
        self.slot_packet[slot] = packet
        self.pending[engine] += 1
        self.rx_inflight[engine] += 1
        self._push(now + self.config.dispatch_cycles, _EV_PUSH, slot)

    def _on_arrival(self, now: int) -> None:
        config = self.config
        if config.trace is not None:
            # Trace-driven source: replay events verbatim.  Consecutive
            # zero-gap events arrive on the same cycle (one burst).
            trace = config.trace
            while self._trace_index < len(trace):
                event = trace[self._trace_index]
                packet = self.app.replay(self._trace_index, event)
                self._trace_index += 1
                self._admit(packet, now, flow=event.flow)
                if (
                    self._trace_index < len(trace)
                    and trace[self._trace_index].gap == 0
                ):
                    continue
                break
            if self._trace_index >= len(trace):
                self.source_done = True
            else:
                self._push(
                    now + trace[self._trace_index].gap, _EV_ARRIVE
                )
            return
        count = (
            config.packets
            if config.arrival == "backlog"
            else min(config.burst, config.packets - self.generated)
        )
        for _ in range(count):
            packet = self.app.generate(self.rng, self.generated)
            self._admit(packet, now)
        if self.generated >= config.packets:
            self.source_done = True
        else:
            self._push(now + self._gap(), _EV_ARRIVE)

    def _on_push(self, now: int, slot: int) -> None:
        """The dispatch stage lands one reserved ring push: the
        descriptor becomes pollable and the scratch port is charged."""
        packet = self.slot_packet[slot]
        finish = self.rx[packet.engine].try_enqueue(now, slot)
        assert finish is not None, "dispatch reserved ring room at arrival"
        packet.rx_ready = finish
        self.rx_inflight[packet.engine] -= 1

    def _bind_inputs(self, packet: StreamPacket) -> dict:
        values = dict(self.app.bundle.inputs)
        values.update(packet.inputs)
        if self._has_base:
            values["base"] = self._slot_base(packet.slot)
        raw = self.comp.make_inputs(**values)
        if self.comp.alloc is None:
            return raw
        locations = self.comp.alloc.decoded.input_locations
        out: dict = {}
        for temp, value in raw.items():
            location = locations.get(temp)
            if location is None:
                continue
            kind, where = location
            if kind == "reg":
                out[(where.bank, where.index)] = value
            else:
                # Spilled input: lives at an absolute scratch address
                # shared by every thread — per-packet values would race.
                raise SimulatorError(
                    f"input {temp} was spilled to scratch; the streaming "
                    "runtime needs register-resident inputs"
                )
        return out

    def _on_worker(self, now: int, worker: int) -> None:
        state = self.worker_state[worker]
        if state == "dormant":
            return
        if state == "idle":
            self._worker_pull(now, worker)
        elif state == "txwait":
            self._worker_tx(now, worker)
        else:  # 'run'
            self._worker_run(now, worker)

    def _worker_pull(self, now: int, worker: int) -> None:
        engine, tid = divmod(worker, self.config.threads)
        popped = self.rx[engine].try_dequeue(now)
        if popped is None:
            # Retire only once no packet can ever reach this engine's
            # ring: the source is done AND nothing steered here is
            # still queued or sitting in the dispatch stage.  An empty
            # ring alone proves nothing — a descriptor reserved at
            # arrival may land ``dispatch_cycles`` later.
            if self.source_done and self.pending[engine] == 0:
                self.worker_state[worker] = "dormant"
            else:
                self._push(now + self.config.poll, _EV_WORKER, worker)
            return
        slot, finish = popped
        self.pending[engine] -= 1
        packet = self.slot_packet[slot]
        packet.dispatched = finish
        packet.thread = tid
        packet.status = "inflight"
        self.machines[engine].dispatch(tid, self._bind_inputs(packet), finish)
        self.worker_packet[worker] = packet
        self.worker_state[worker] = "run"
        self._push(finish, _EV_WORKER, worker)

    def _worker_run(self, now: int, worker: int) -> None:
        engine, tid = divmod(worker, self.config.threads)
        machine = self.machines[engine]
        thread = machine.threads[tid]
        clock = machine.service(tid, max(self.engine_clock[engine], now))
        self.engine_clock[engine] = clock
        self.end_cycle = max(self.end_cycle, clock)
        if not thread.done:
            self._push(thread.ready_at, _EV_WORKER, worker)
            return
        # Halted: collect this thread's own halt values.  Sibling
        # threads of the same engine halt in interleaved slices, so
        # the shared ``machine.results`` list is in no useful order —
        # the per-thread hand-off is the only race-free channel.
        values = machine.take_result(tid)
        assert values is not None, "halted thread must have halt values"
        packet = self.worker_packet[worker]
        packet.halted = clock
        packet.results = values
        self.worker_state[worker] = "txwait"
        self._worker_tx(clock, worker)

    def _worker_tx(self, now: int, worker: int) -> None:
        packet = self.worker_packet[worker]
        finish = self.tx.try_enqueue(now, packet.slot)
        if finish is None:
            packet.tx_stalls += 1  # backpressure: sink is behind
            self._push(now + self.config.poll, _EV_WORKER, worker)
            return
        packet.tx_ready = finish
        self.worker_packet[worker] = None
        self.worker_state[worker] = "idle"
        self._ensure_sink(finish)
        self._push(finish, _EV_WORKER, worker)

    def _ensure_sink(self, time: int) -> None:
        if not self.sink_scheduled:
            self.sink_scheduled = True
            self._push(max(time, self.sink_next_free), _EV_SINK)

    def _on_sink(self, now: int) -> None:
        self.sink_scheduled = False
        popped = self.tx.try_dequeue(now)
        if popped is None:
            return  # re-armed by the next TX enqueue
        slot, finish = popped
        drain = max(finish, self.sink_next_free)
        self.sink_next_free = drain + self.config.sink_gap
        packet = self.slot_packet.pop(slot)
        self._validate(packet, drain)
        self.free_slots.append(slot)
        self.completed += 1
        self.accounted += 1
        self.end_cycle = max(self.end_cycle, drain)
        if not self.tx.empty:
            self._ensure_sink(self.sink_next_free)

    def _validate(self, packet: StreamPacket, drain: int) -> None:
        packet.drained = drain
        packet.latency = drain - packet.arrival
        self.latencies.append(packet.latency)
        self.payload_bits += packet.payload_bytes * 8
        got_words = self.memory["sdram"].dump_words(
            self._slot_base(packet.slot), len(packet.expected_words)
        )
        ok = (
            tuple(packet.results) == tuple(packet.expected_results)
            and got_words == list(packet.expected_words)
        )
        if ok:
            packet.status = "done"
            return
        packet.status = "mismatch"
        self.mismatches.append(
            {
                "packet": packet.seq,
                "results": tuple(packet.results),
                "expected_results": tuple(packet.expected_results),
                "words": got_words,
                "expected_words": list(packet.expected_words),
            }
        )

    # -- the run -------------------------------------------------------------

    def _finished(self) -> bool:
        return self.source_done and self.accounted >= self.generated

    def run(self) -> StreamResult:
        config = self.config
        with self.tracer.span(
            "net.run",
            app=self.app.name,
            engines=config.engines,
            threads=config.threads,
            seed=config.seed,
        ) as sp:
            if config.trace is not None:
                if config.trace:
                    self._push(config.trace[0].gap, _EV_ARRIVE)
                else:
                    self.source_done = True
            else:
                self._push(0, _EV_ARRIVE)
            for worker in range(len(self.worker_state)):
                self._push(0, _EV_WORKER, worker)
            while self._heap:
                time, _, kind, data = heapq.heappop(self._heap)
                if config.max_cycles is not None and time > config.max_cycles:
                    self.truncated = True
                    break
                if kind == _EV_ARRIVE:
                    self._on_arrival(time)
                elif kind == _EV_WORKER:
                    self._on_worker(time, data)
                elif kind == _EV_PUSH:
                    self._on_push(time, data)
                else:
                    self._on_sink(time)
                if self._finished():
                    break
            # Packet conservation: every generated packet is completed,
            # dropped, or still somewhere in the pipeline (queued /
            # dispatching / on an engine / awaiting the sink) — the
            # latter only on max_cycles truncation.
            inflight = sum(
                1
                for packet in self.packets
                if packet.status not in ("done", "mismatch", "dropped")
            )
            assert self.generated == self.completed + self.dropped + inflight
            assert inflight == 0 or self.truncated
            result = StreamResult(
                app=self.app.name,
                config=config,
                generated=self.generated,
                completed=self.completed,
                dropped=self.dropped,
                mismatches=self.mismatches,
                cycles=self.end_cycle,
                latencies=self.latencies,
                payload_bits=self.payload_bits,
                rx_high_water=self.rx.high_water,
                tx_high_water=self.tx.high_water,
                engine_cycles=list(self.engine_clock),
                engine_instructions=[
                    sum(t.stats.instructions for t in m.threads)
                    for m in self.machines
                ],
                inflight=inflight,
                truncated=self.truncated,
                rx_high_waters=self.rx.high_waters(),
                rx_drops=list(self.rx_drops),
                steered=list(self.steered),
                packets=self.packets,
            )
            if sp:
                summary = result.summary()
                summary.pop("app", None)
                sp.add(**summary)
                for latency in result.latencies:
                    sp.bucket("latency", latency)
            for engine, machine in enumerate(self.machines):
                with self.tracer.span("net.engine") as esp:
                    if esp:
                        esp.add(
                            engine=engine,
                            cycles=self.engine_clock[engine],
                            instructions=sum(
                                t.stats.instructions for t in machine.threads
                            ),
                            packets=sum(
                                t.stats.iterations for t in machine.threads
                            ),
                            mem_stall_cycles=sum(
                                t.stats.mem_stall_cycles
                                for t in machine.threads
                            ),
                            steered=self.steered[engine],
                            rx_high_water=self.rx[engine].high_water,
                            rx_drops=self.rx_drops[engine],
                        )
        return result


def run_stream(app: StreamApp, config: NetConfig, tracer=None) -> StreamResult:
    """Convenience wrapper: build the runtime and run it."""
    return NetRuntime(app, config, tracer).run()


# --------------------------------------------------------------------------
# Whole-chip scale-out: shard N chips over the batch process pool
# --------------------------------------------------------------------------


@dataclass
class ShardedResult:
    """Aggregate view of N independent chips run as one deployment.

    Each chip is a full :class:`NetRuntime` (its own memory system,
    rings and engines) with a distinct seed; chips run in parallel in a
    real deployment, so the aggregate throughput is the *sum* of the
    per-chip Mb/s and the makespan is the *slowest* chip's cycles.
    """

    app: str
    chips: int
    results: list[StreamResult]

    @property
    def generated(self) -> int:
        return sum(r.generated for r in self.results)

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.results)

    @property
    def dropped(self) -> int:
        return sum(r.dropped for r in self.results)

    @property
    def inflight(self) -> int:
        return sum(r.inflight for r in self.results)

    @property
    def mismatches(self) -> list[dict]:
        return [m for r in self.results for m in r.mismatches]

    @property
    def cycles(self) -> int:
        return max((r.cycles for r in self.results), default=0)

    @property
    def latencies(self) -> list[int]:
        return [latency for r in self.results for latency in r.latencies]

    @property
    def mbps(self) -> float:
        return sum(r.mbps for r in self.results)

    def percentile(self, p: float) -> int:
        return nearest_rank(self.latencies, p)

    def summary(self) -> dict:
        return {
            "app": self.app,
            "chips": self.chips,
            "generated": self.generated,
            "completed": self.completed,
            "dropped": self.dropped,
            "inflight": self.inflight,
            "mismatches": len(self.mismatches),
            "cycles": self.cycles,
            "mbps": round(self.mbps, 3),
            "latency_p50": self.percentile(50),
            "latency_p95": self.percentile(95),
        }


def chip_seed(base: int, chip: int) -> int:
    """Decorrelated per-chip stream seed.

    The old ``base + chip`` aliased overlapping deployments — chip 1 of
    a seed-0 run replayed exactly chip 0 of a seed-1 run.  Mixing both
    coordinates through :func:`~repro.ixp.machine.hash48` gives every
    ``(base, chip)`` pair its own stream.
    """
    return hash48((base * 0x9E3779B1 + chip) & 0xFFFFFFFF)


def _chip_worker(
    chip: int,
    app_name: str,
    config: NetConfig,
    sizes: tuple[int, ...] | None,
    virtual: bool,
    cache_dir: str | None,
    trace: bool,
    keep_packets: bool,
) -> tuple[StreamResult, list]:
    """Run one chip; module-level so the process pool can pickle it.

    Compiles the app in-worker (through the content-addressed cache
    when ``cache_dir`` is given — warm it in the parent first and every
    worker gets a hit) and streams with a per-chip seed, so chips see
    distinct traffic.
    """
    from dataclasses import replace

    from repro.compiler import CompileOptions, compile_nova
    from repro.trace import Tracer

    from repro.apps import build_aes_app, build_kasumi_app, build_nat_app

    builder = {
        "aes": build_aes_app,
        "kasumi": build_kasumi_app,
        "nat": build_nat_app,
    }[app_name]
    source = builder().source
    options = CompileOptions()
    options.run_allocator = not virtual
    options.alloc.solve.time_limit = 900
    tracer = Tracer() if trace else None
    if cache_dir:
        from repro.cache import CompileCache, cached_compile

        cache = CompileCache(cache_dir, tracer)
        comp, _ = cached_compile(
            source, f"{app_name}.nova", options, cache, tracer
        )
    else:
        comp = compile_nova(source, f"{app_name}.nova", options, tracer=tracer)
    chip_config = replace(config, seed=chip_seed(config.seed, chip))
    result = run_stream(stream_app(app_name, comp, sizes), chip_config, tracer)
    if not keep_packets:
        result.packets = []
    return result, (list(tracer.spans) if tracer else [])


def run_sharded(
    app_name: str,
    config: NetConfig,
    chips: int,
    sizes: tuple[int, ...] | None = None,
    virtual: bool = True,
    cache_dir: str | None = None,
    jobs: int = 1,
    tracer=None,
    keep_packets: bool = False,
    pool=None,
) -> ShardedResult:
    """Simulate ``chips`` independent chips and aggregate their results.

    Fans the chips out over :func:`repro.batch.scatter` (``jobs == 1``
    stays in-process; more and each chip lands in a pool worker that
    compiles the app itself).  Chip ``i`` streams with seed
    :func:`chip_seed(config.seed, i) <chip_seed>`, so a multi-chip
    deployment covers ``chips`` times the flow population of a single
    run and overlapping base seeds never replay each other's chips.
    """
    if chips <= 0:
        raise ValueError("need at least one chip")
    from repro.batch import scatter

    tracer = ensure(tracer)
    with tracer.span(
        "net.sharded", app=app_name, chips=chips, jobs=jobs
    ) as sp:
        outcomes = scatter(
            _chip_worker,
            [
                (
                    chip,
                    app_name,
                    config,
                    sizes,
                    virtual,
                    cache_dir,
                    tracer.enabled,
                    keep_packets,
                )
                for chip in range(chips)
            ],
            jobs,
            pool=pool,
        )
        results = []
        for result, spans in outcomes:
            results.append(result)
            tracer.adopt(spans, parent="net.sharded")
        sharded = ShardedResult(app=app_name, chips=chips, results=results)
        if sp:
            summary = sharded.summary()
            summary.pop("app", None)
            sp.add(**summary)
    return sharded


def stream_trace_lines(result: StreamResult, memory: MemorySystem | None = None) -> list[str]:
    """A deterministic, human-readable run transcript (golden tests)."""
    config = result.config
    lines = [
        f"app={result.app} engines={config.engines} threads={config.threads} "
        f"seed={config.seed} arrival={config.arrival} packets={config.packets}",
        f"rx_capacity={config.rx_capacity} tx_capacity={config.tx_capacity} "
        f"sink_gap={config.sink_gap} steer={config.steer} "
        f"dispatch_cycles={config.dispatch_cycles}",
    ]
    for packet in result.packets:
        if packet.status == "dropped":
            lines.append(
                f"pkt {packet.seq:03d} bytes={packet.payload_bytes:<4d} "
                f"arrival={packet.arrival:<8d} flow={packet.flow:08x} "
                f"engine={packet.engine} dropped"
            )
            continue
        lines.append(
            f"pkt {packet.seq:03d} bytes={packet.payload_bytes:<4d} "
            f"arrival={packet.arrival:<8d} flow={packet.flow:08x} "
            f"engine={packet.engine} "
            f"dispatch={packet.dispatched:<8d} halt={packet.halted:<8d} "
            f"drain={packet.drained:<8d} latency={packet.latency:<8d} "
            f"{packet.status}"
        )
    for engine in range(config.engines):
        hwm = (
            result.rx_high_waters[engine]
            if engine < len(result.rx_high_waters)
            else 0
        )
        drops = result.rx_drops[engine] if engine < len(result.rx_drops) else 0
        steered = result.steered[engine] if engine < len(result.steered) else 0
        lines.append(
            f"rx{engine} steered={steered} hwm={hwm} drops={drops}"
        )
    lines.append(
        f"generated={result.generated} completed={result.completed} "
        f"dropped={result.dropped} inflight={result.inflight} "
        f"mismatches={len(result.mismatches)}"
    )
    conserved = (
        result.generated
        == result.completed + result.dropped + result.inflight
    )
    lines.append(
        "conservation generated==completed+dropped+inflight "
        f"{'holds' if conserved else 'VIOLATED'}"
    )
    lines.append(
        f"cycles={result.cycles} rx_hwm={result.rx_high_water} "
        f"tx_hwm={result.tx_high_water} p50={result.percentile(50)} "
        f"p95={result.percentile(95)}"
    )
    if memory is not None:
        lines.append(f"memory_digest={memory_digest(memory)}")
    return lines


# --------------------------------------------------------------------------
# ``novac pump`` CLI
# --------------------------------------------------------------------------


def pump_main(argv: list[str]) -> int:
    """Entry point for ``novac pump`` (see :mod:`repro.cli`)."""
    import argparse

    from repro.compiler import CompileOptions, compile_nova
    from repro.errors import NovaError
    from repro.trace import Tracer

    parser = argparse.ArgumentParser(
        prog="novac pump",
        description="drive a Section 11 app with a synthetic packet stream",
    )
    parser.add_argument("--app", choices=("aes", "kasumi", "nat"), required=True)
    parser.add_argument("--engines", type=int, default=6,
                        help="micro-engines per chip (default 6, the paper's "
                             "full chip)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--steer", choices=STEER_MODES, default="flow",
                        help="dispatch policy: flow-hash or round-robin")
    parser.add_argument("--chips", type=int, default=1,
                        help="independent chips to shard across (default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool workers for --chips > 1")
    parser.add_argument("--packets", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rx", type=int, default=32, metavar="N",
                        help="per-engine RX ring capacity (default 32)")
    parser.add_argument("--tx", type=int, default=32, metavar="N",
                        help="TX ring capacity (default 32)")
    parser.add_argument("--arrival", choices=("poisson", "constant", "backlog"),
                        default="poisson")
    parser.add_argument("--gap", type=float, default=64.0,
                        help="mean cycles between bursts (default 64)")
    parser.add_argument("--burst", type=int, default=1)
    parser.add_argument("--sink-gap", type=int, default=0,
                        help="cycles between TX drains (default 0 = line rate)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="stop after this many cycles (default: packet budget)")
    parser.add_argument("--payload-bytes", default=None, metavar="CSV",
                        help="payload-size choices, e.g. 16,32,64")
    parser.add_argument("--virtual", action="store_true",
                        help="skip the ILP allocator (fast smoke runs)")
    parser.add_argument("--interp", action="store_true",
                        help="use the reference interpreter instead of the "
                             "pre-decoded execution path")
    parser.add_argument("--sim-mode", choices=SIM_MODES, default=None,
                        help="simulator speed tier for the engines "
                             "(overrides --interp; 'compiled' runs the "
                             "codegen tier)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed compile cache directory")
    parser.add_argument("--trace", action="store_true",
                        help="print the span table (includes net.* spans)")
    parser.add_argument("--trace-json", metavar="FILE",
                        help="write spans as JSON lines")
    args = parser.parse_args(argv)

    sizes = None
    if args.payload_bytes:
        sizes = tuple(int(piece, 0) for piece in args.payload_bytes.split(","))

    from repro.apps import build_aes_app, build_kasumi_app, build_nat_app

    builder = {
        "aes": build_aes_app,
        "kasumi": build_kasumi_app,
        "nat": build_nat_app,
    }[args.app]
    source = builder().source
    options = CompileOptions()
    options.run_allocator = not args.virtual
    options.alloc.solve.time_limit = 900
    tracer = Tracer() if (args.trace or args.trace_json) else None

    import sys

    try:
        if args.cache_dir:
            from repro.cache import CompileCache, cached_compile

            cache = CompileCache(args.cache_dir, tracer)
            comp, _ = cached_compile(
                source, f"{args.app}.nova", options, cache, tracer
            )
        else:
            comp = compile_nova(
                source, f"{args.app}.nova", options, tracer=tracer
            )
    except NovaError as exc:
        print(f"novac pump: {exc}", file=sys.stderr)
        return 1

    config = NetConfig(
        engines=args.engines,
        threads=args.threads,
        rx_capacity=args.rx,
        tx_capacity=args.tx,
        packets=args.packets,
        max_cycles=args.cycles,
        seed=args.seed,
        arrival=args.arrival,
        mean_gap=args.gap,
        burst=args.burst,
        sink_gap=args.sink_gap,
        steer=args.steer,
        decode=not args.interp,
        sim_mode=args.sim_mode,
    )
    mode = "virtual" if args.virtual else "physical"
    tier = args.sim_mode or ("interp" if args.interp else "decoded")

    if args.chips > 1:
        # Multi-chip deployment: the compile above warmed the cache (if
        # any), so pool workers recompile cheaply or hit the cache.
        try:
            sharded = run_sharded(
                args.app,
                config,
                chips=args.chips,
                sizes=sizes,
                virtual=args.virtual,
                cache_dir=args.cache_dir,
                jobs=args.jobs,
                tracer=tracer,
            )
        except (SimulatorError, ValueError) as exc:
            print(f"novac pump: {exc}", file=sys.stderr)
            return 1
        summary = sharded.summary()
        print(
            f"pump {args.app} ({mode}, {tier}, "
            f"{args.chips} chips x {config.engines}x{config.threads})"
        )
        for key in (
            "chips", "generated", "completed", "dropped", "inflight",
            "mismatches", "cycles", "mbps", "latency_p50", "latency_p95",
        ):
            print(f"  {key:<14} {summary[key]}")
        if tracer is not None:
            if args.trace:
                print(tracer.table())
            if args.trace_json:
                tracer.write_jsonl(args.trace_json)
        if sharded.mismatches:
            print(
                f"novac pump: {len(sharded.mismatches)} packets mismatched "
                "the reference implementation",
                file=sys.stderr,
            )
            return 1
        return 0

    try:
        result = run_stream(stream_app(args.app, comp, sizes), config, tracer)
    except (SimulatorError, ValueError) as exc:
        print(f"novac pump: {exc}", file=sys.stderr)
        return 1

    summary = result.summary()
    print(f"pump {args.app} ({mode}, {tier})")
    for key in (
        "engines", "threads", "generated", "completed", "dropped",
        "inflight", "mismatches", "cycles", "mbps", "latency_p50",
        "latency_p95", "latency_max", "rx_high_water", "tx_high_water",
    ):
        print(f"  {key:<14} {summary[key]}")
    if result.truncated:
        print("  (truncated by --cycles budget)")
    hist = result.latency_histogram()
    if hist:
        widest = max(hist.values())
        print("  latency histogram (cycles):")
        for bound, count in hist.items():
            bar = "#" * max(1, round(count * 40 / widest))
            print(f"    <= {bound:<10d} {count:>5d} {bar}")
    if tracer is not None:
        if args.trace:
            print(tracer.table())
        if args.trace_json:
            tracer.write_jsonl(args.trace_json)
    if result.mismatches:
        for mismatch in result.mismatches[:5]:
            print(
                f"novac pump: packet {mismatch['packet']} mismatched the "
                "reference implementation",
                file=sys.stderr,
            )
        return 1
    return 0
