"""Compiled simulator tier: FlowGraph → generated Python source.

The decoded tier (:func:`repro.ixp.machine.decoded_graph`) pays one
closure call per dynamic instruction.  This module removes that last
layer of interpretation: each flowgraph is compiled **once** into a
single generated Python function (``exec``-compiled source) in which

- every instruction is inlined straight-line code — no per-instruction
  closure call, no ``(cost, blocked)`` tuple packing, no
  ``thread.step`` pointer chasing;
- operand register keys, pre-masked immediates, folded constants and
  error messages are interned into the generated module's namespace at
  codegen time (the same static work the decode stage does, done once
  per *graph* instead of once per *closure*);
- basic blocks are emitted as straight-line segments; control transfers
  are computed jumps — an integer ``pc`` dispatched through a generated
  binary comparison tree at the top of one ``while`` loop;
- the register file stays the same plain dict the decoded tier uses
  (``thread.rv``), hoisted into a local, so definedness faults keep the
  interpreter's exact ``KeyError`` → ``SimulatorError`` semantics and
  slices of any length pay no save/restore cost.

The generated function has the same contract as
``Machine._run_thread_decoded``: ``run(thread, clock) -> clock`` runs
one thread until it blocks, yields, or halts, with *identical*
observables — cycle counts, ``mem_stall_cycles`` accounting,
ring/scratch port charging, per-opcode trace histograms, raised error
type/message and the order errors are raised in.  The decoded tier is
the parity oracle (``tests/test_decode_parity.py`` pins three-way
equivalence interp = decoded = compiled).

Resumption works like the decoded tier's ``thread.step``, but with an
integer: ``thread.cpc`` names the label (a resume point) execution
continues from on the next slice.  Labels exist at block entries, at
ring/lock instructions (spin-retry re-executes them) and immediately
after blocking instructions (memory references, ring ops, ``ctx_arb``).

Statically-illegal instructions compile to *raiser* segments that
replay the dynamic register reads the interpreter performs before
faulting and then raise the identical exception — codegen itself never
raises for an unreachable illegal instruction.

Caching mirrors the decode cache: compiled functions are memoized per
``(id(graph), physical, instrumented)`` with ``weakref.finalize``
eviction, so every Machine sharing a flowgraph shares one generated
function and ``id()`` reuse cannot alias.  ``instrumented`` selects a
variant with per-opcode histogram recording compiled in (used only
under tracing; the plain variant carries zero tracing overhead).

Fallback: an instruction kind this generator does not cover makes
:func:`compiled_graph` return ``None`` (memoized), and the Machine
falls back to the decoded tier for the whole graph — never a partial
compile, never an error.
"""

from __future__ import annotations

import heapq
import weakref

from repro.errors import SimulatorError
from repro.ixp import isa
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.machine import (
    HASH_LATENCY,
    RING_RETRY,
    WORD_MASK,
    _ALU_FNS,
    _CMP_FNS,
    _check_alu_dst,
    _check_alu_operands,
    _check_aggregate,
    _bank_of,
    _intern_key,
    _opcode_of,
    _read_spec,
    hash48,
)
from repro.ixp.banks import Bank
from repro.trace import ensure

#: Runtime evaluation templates per ALU op, mirrored bit for bit from
#: ``machine._ALU_FNS`` (the decoded tier's bound functions).  Module
#: level so the fuzz injection probe (``inject.broken_codegen``) can
#: swap one entry and prove the differential oracle catches a
#: miscompiled ALU op.  Constant folding goes through ``_ALU_FNS``
#: itself, exactly like the decode stage.
_ALU_EXPRS = {
    "add": "(({a}) + ({b})) & 4294967295",
    "sub": "(({a}) - ({b})) & 4294967295",
    "and": "({a}) & ({b})",
    "or": "({a}) | ({b})",
    "xor": "({a}) ^ ({b})",
    "shl": "(({a}) << (({b}) & 31)) & 4294967295",
    "shr": "(({a}) & 4294967295) >> (({b}) & 31)",
    "not": "~({a}) & 4294967295",
    "neg": "-({a}) & 4294967295",
}

_CMP_EXPRS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}

#: the bitwise ops whose *immediates* are masked at codegen time (the
#: other ops' formulas mask their results) — same rule as decode.
_BITWISE = ("and", "or", "xor")

_MAX_RAISE = 'raise SimulatorError(f"simulation exceeded {max_cycles} cycles")'


class UnsupportedOp(Exception):
    """An instruction kind the generator does not cover (→ fallback)."""


class _CompiledGraph:
    """One flowgraph compiled to a generated slice-function factory.

    ``bind(machine)`` resolves the machine-lifetime state the generated
    code touches (cycle budget, memory system, lock table, CSR file,
    results list, histogram) into closure cells once, and returns a pair
    ``(run_slice, run_loop)``: ``run_slice(thread, clock) -> clock``
    runs one slice (the ``service()`` entry point), ``run_loop(ready,
    clock) -> clock`` is ``Machine.run``'s whole scheduler loop with the
    dispatch tree inlined (same segments, no per-slice call).  Machines
    sharing a flowgraph share this object (and its generated code
    object); each ``bind`` call is just two closure allocations."""

    __slots__ = ("bind", "instructions", "labels", "source", "physical",
                 "instrumented")

    def __init__(self, bind, instructions, labels, source, physical,
                 instrumented):
        self.bind = bind  # bind(machine) -> (run_slice, run_loop)
        self.instructions = instructions
        self.labels = labels
        self.source = source
        self.physical = physical
        self.instrumented = instrumented


class _Codegen:
    def __init__(self, graph: FlowGraph, physical: bool, instrumented: bool):
        self.graph = graph
        self.physical = physical
        self.instrumented = instrumented
        self.globals: dict[str, object] = {
            "SimulatorError": SimulatorError,
            "hash48": hash48,
            "heappush": heapq.heappush,
            "heappop": heapq.heappop,
        }
        self._const_names: dict[object, str] = {}
        self._segments: list[list[str]] = []
        self.labels: dict[tuple[str, int], int] = {}
        self.buf: list[str] = []
        self.ind = 0
        #: instruction-starts since the last ``icount`` update on the
        #: current segment's fall-through path (raise sites flush it).
        self.pending = 0
        #: cycles charged by :meth:`tick` but not yet emitted as a
        #: ``clock`` update + budget check (see :meth:`clock_flush`).
        self.cycles_pending = 0
        #: whether the current segment still falls through.
        self.open = True
        self.count = 0
        #: register-key const name → expression (a local name or an
        #: integer literal) known to hold that register's current value
        #: on the straight-line path being emitted.  Re-reads skip the
        #: dict lookup *and* are statically known defined, so their
        #: undefined-register handlers vanish.  Never needs mid-path
        #: invalidation: every emitter that writes ``rv`` outside
        #: straight-line code (memory/ring resumes, interp delegation,
        #: halt/restart) closes the segment.
        self.mirror: dict[str, str] = {}
        self.tmp = 0
        #: memory spaces / rings referenced by name → bind-time cell
        #: variable.  Cells hold the resolved object, or ``None`` when
        #: the name is unknown at bind time — the use site then falls
        #: back to the runtime lookup, preserving the decoded tier's
        #: "unknown memory space/ring" error at execution (not bind).
        self.space_cells: dict[str, str] = {}
        self.ring_cells: dict[str, str] = {}

    def space_cell(self, name: str) -> str:
        return self.space_cells.setdefault(name, f"_sp{len(self.space_cells)}")

    def ring_cell(self, name: str) -> str:
        return self.ring_cells.setdefault(name, f"_rg{len(self.ring_cells)}")

    # -- low-level emission --------------------------------------------------

    def w(self, text: str) -> None:
        self.buf.append("    " * self.ind + text)

    def const(self, value, hint: str = "") -> str:
        """Intern ``value`` into the generated module's namespace."""
        try:
            key = (type(value), value)
            hash(key)
        except TypeError:
            key = ("id", id(value))
        name = self._const_names.get(key)
        if name is None:
            name = f"_c{len(self._const_names)}" + (f"_{hint}" if hint else "")
            self._const_names[key] = name
            self.globals[name] = value
        return name

    def flush_into(self, prefix: str = "") -> None:
        """Emit an ``icount`` update for the pending instructions (the
        codegen-time counter stays — raise handlers deeper in the same
        instruction still owe the same amount)."""
        if self.pending:
            self.w(f"{prefix}icount += {self.pending}")

    def sync(self) -> None:
        """Flush ``icount`` *on the main path* before a call that can
        raise from outside generated code (memory spaces, rings, the
        input provider): the decoded loop counts an instruction before
        executing it, so an escaping exception must see it counted."""
        if self.pending:
            self.w(f"icount += {self.pending}")
            self.pending = 0

    def instr_start(self) -> None:
        self.pending += 1
        self.count += 1

    def hist(self, instr: isa.Instr, cost) -> None:
        """Per-opcode histogram recording (instrumented variant only).

        Mirrors the decoded loop: recorded *after* the instruction body
        (a faulting body records nothing) and entries are created
        lazily, so never-executed opcodes stay absent."""
        if not self.instrumented:
            return
        self.w(f"_e = hist.setdefault({_opcode_of(instr)!r}, [0, 0])")
        self.w("_e[0] += 1")
        self.w(f"_e[1] += {cost}")

    def tick(self, cost: int) -> None:
        """Charge ``cost`` cycles (deferred, like ``icount``).

        The ``clock`` increment and its budget check are batched on the
        codegen-time ``cycles_pending`` counter and emitted by
        :meth:`clock_flush`/:meth:`clock_sync` at the next point that
        *reads* the clock or can raise.  Within a batched run only
        registers/CSRs mutate, and nothing in the repo observes those
        (or ``stats``) after a budget error, so deferring the check past
        instruction boundaries is not observable: the error keeps its
        exact type and message, and success runs are cycle-identical."""
        self.cycles_pending += cost

    def clock_flush(self) -> None:
        """Emit the owed ``clock`` update + budget check *without*
        resetting the counter (exit paths inside branch arms: the
        sibling path still owes the same amount)."""
        if self.cycles_pending:
            self.w(f"clock += {self.cycles_pending}")
            self.w("if clock > max_cycles:")
            self.flush_into("    ")
            self.w(f"    {_MAX_RAISE}")

    def clock_sync(self) -> None:
        """Flush the owed cycles on the main path, before emission that
        reads ``clock`` or can raise (decoded checks the budget after
        every instruction, so a fallible body must see it checked)."""
        self.clock_flush()
        self.cycles_pending = 0

    def exit_blocked(self, finish_expr: str, next_label: int) -> None:
        """Slice exit for a completed memory/ring transfer."""
        self.clock_flush()
        self.flush_into()
        self.w(f"thread.cpc = {next_label}")
        self.w(f"thread.ready_at = {finish_expr}")
        self.w(f"if {finish_expr} > clock:")
        self.w(f"    stats.mem_stall_cycles += {finish_expr} - clock")
        self.w("return clock")
        self.open = False

    def exit_retry(self, self_label: int, wait: int) -> None:
        """Slice exit for a spin-retry (full/empty ring, held lock):
        the thread re-executes the same instruction ``wait`` cycles
        after issue (cost 1 already charged via :meth:`tick`)."""
        self.clock_flush()
        self.flush_into()
        self.w(f"thread.cpc = {self_label}")
        self.w(f"thread.ready_at = clock + {wait - 1}")
        self.w(f"stats.mem_stall_cycles += {wait - 1}")
        self.w("return clock")

    def exit_yield(self, next_label: int | None) -> None:
        """Slice exit at the current clock (ctx_arb / halt)."""
        self.clock_flush()
        self.flush_into()
        if next_label is not None:
            self.w(f"thread.cpc = {next_label}")
        self.w("thread.ready_at = clock")
        self.w("return clock")
        self.open = False

    def goto(self, label: int) -> None:
        self.clock_flush()
        self.flush_into()
        self.w(f"pc = {label}")
        self.w("continue")
        self.open = False

    # -- per-instruction generators ------------------------------------------
    #
    # Each mirrors its ``machine._decode_*`` twin: the same static
    # checks in the same order, the same pre-computation, and emitted
    # runtime code whose observable behaviour is identical to the
    # decoded step closure executed under ``_run_thread_decoded``.

    def gen_raiser(self, exc: BaseException, prior) -> None:
        """Statically-illegal instruction: replay the definedness checks
        of the dynamic reads the interpreter performs first, then raise
        the decode-time exception with identical type and args."""
        self.instr_start()
        self.clock_sync()
        for key, msg in prior:
            kc, mc = self.const(key, "k"), self.const(msg, "m")
            self.w(f"if {kc} not in rv:")
            self.flush_into("    ")
            self.w(f"    raise SimulatorError({mc})")
        et = self.const(type(exc), "et")
        ea = self.const(exc.args, "ea")
        self.flush_into()
        self.w(f"raise {et}(*{ea})")
        self.open = False

    def _reg_read_try(self, target: str, expr: str, handlers) -> None:
        """``target = expr`` with KeyError → undefined-register mapping.

        ``handlers`` is a list of (keyname, msgname); one entry raises
        its message directly, two entries disambiguate the way the
        decoded closures do (first key checked against ``rv``)."""
        self.clock_sync()  # budget error beats the undefined-reg error
        self.w("try:")
        self.w(f"    {target} = {expr}")
        self.w("except KeyError:")
        self.flush_into("    ")
        if len(handlers) == 1:
            self.w(f"    raise SimulatorError({handlers[0][1]}) from None")
        else:
            (ak, am), (_bk, bm) = handlers
            self.w(
                f"    raise SimulatorError({am} if {ak} not in rv else {bm})"
                " from None"
            )

    def literal_of(self, spec) -> int | None:
        """The masked value of a reg operand the mirror knows to hold a
        codegen-time integer literal, else None."""
        if spec is not None and spec[0] == "reg":
            mirrored = self.mirror.get(self.const(spec[1], "k"))
            if mirrored is not None and mirrored.isdigit():
                return int(mirrored)
        return None

    def reg_expr(self, kc: str, mc: str):
        """(expression, handler-or-None) for reading register ``kc``.

        A mirrored register reads from its local (no dict access, no
        possible KeyError → no handler); otherwise ``rv[kc]`` with the
        (key, message) handler."""
        mirrored = self.mirror.get(kc)
        if mirrored is not None:
            return mirrored, None
        return f"rv[{kc}]", (kc, mc)

    def emit_assign(self, target: str, expr: str, handlers) -> None:
        """``target = expr``, try-wrapped only for fallible reads."""
        handlers = [h for h in handlers if h is not None]
        if handlers:
            self._reg_read_try(target, expr, handlers)
        else:
            self.w(f"{target} = {expr}")

    def set_reg(self, dkc: str, expr: str, handlers) -> None:
        """``rv[dkc] = expr`` (with undefined-register handling), and
        mirror the written value for later reads on this path.  Simple
        expressions (a local name, an integer literal) mirror as
        themselves; anything else is tee'd through a fresh local."""
        handlers = [h for h in handlers if h is not None]
        if not handlers and (expr.isidentifier() or expr.isdigit()):
            self.w(f"rv[{dkc}] = {expr}")
            self.mirror[dkc] = expr
            return
        v = f"_v{self.tmp}"
        self.tmp += 1
        if handlers:
            self._reg_read_try(f"{v} = rv[{dkc}]", expr, handlers)
        else:
            self.w(f"{v} = rv[{dkc}] = {expr}")
        self.mirror[dkc] = v

    def gen_alu(self, instr: isa.Alu) -> None:
        try:
            _check_alu_operands(instr, instr.uses())
            _check_alu_dst(instr, instr.dst)
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        prior: list = []
        try:
            a = _read_spec(instr.a, self.physical)
            if a[0] == "reg":
                prior.append((a[1], a[2]))
            b = None
            if instr.b is not None:
                b = _read_spec(instr.b, self.physical)
                if b[0] == "reg":
                    prior.append((b[1], b[2]))
            fn = _ALU_FNS.get(instr.op)
            if fn is None:
                raise SimulatorError(f"unknown ALU op '{instr.op}'")
            dk = _intern_key(instr.dst, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, prior)

        self.instr_start()
        dkc = self.const(dk, "k")
        fmt = _ALU_EXPRS[instr.op]
        bitwise = instr.op in _BITWISE
        # A mirrored register whose value is a codegen-time literal
        # folds like an immediate: on masked register values ``fn``
        # computes exactly what the emitted expression would (that
        # equivalence is what the whole tier's parity is pinned to).
        afold = self.literal_of(a)
        bfold = self.literal_of(b)
        if b is None and a[0] == "imm":
            self.set_reg(dkc, repr(fn(a[1], None) & WORD_MASK), ())
        elif b is None and afold is not None:
            self.set_reg(dkc, repr(fn(afold, None) & WORD_MASK), ())
        elif b is None:
            akc, amc = self.const(a[1], "k"), self.const(a[2], "m")
            ae, ah = self.reg_expr(akc, amc)
            self.set_reg(dkc, fmt.format(a=ae, b="0"), (ah,))
        elif a[0] == "imm" and b[0] == "imm":
            self.set_reg(dkc, repr(fn(a[1], b[1]) & WORD_MASK), ())
        elif (a[0] == "imm" or afold is not None) and (
            b[0] == "imm" or bfold is not None
        ):
            av = a[1] if a[0] == "imm" else afold
            bv = b[1] if b[0] == "imm" else bfold
            self.set_reg(dkc, repr(fn(av, bv) & WORD_MASK), ())
        elif b[0] == "imm":
            akc, amc = self.const(a[1], "k"), self.const(a[2], "m")
            bv = b[1] & WORD_MASK if bitwise else b[1]
            ae, ah = self.reg_expr(akc, amc)
            self.set_reg(dkc, fmt.format(a=ae, b=repr(bv)), (ah,))
        elif a[0] == "imm":
            av = a[1] & WORD_MASK if bitwise else a[1]
            bkc, bmc = self.const(b[1], "k"), self.const(b[2], "m")
            be, bh = self.reg_expr(bkc, bmc)
            self.set_reg(dkc, fmt.format(a=repr(av), b=be), (bh,))
        else:
            akc, amc = self.const(a[1], "k"), self.const(a[2], "m")
            bkc, bmc = self.const(b[1], "k"), self.const(b[2], "m")
            ae, ah = self.reg_expr(akc, amc)
            be, bh = self.reg_expr(bkc, bmc)
            self.set_reg(dkc, fmt.format(a=ae, b=be), (ah, bh))
        self.hist(instr, 1)
        self.tick(1)

    def _gen_copy(self, instr, cost: int) -> None:
        """Shared tail of Move/Clone: src → dst at ``cost`` cycles."""
        prior: list = []
        try:
            src = _read_spec(instr.src, self.physical)
            if src[0] == "reg":
                prior.append((src[1], src[2]))
            dk = _intern_key(instr.dst, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, prior)
        self.instr_start()
        dkc = self.const(dk, "k")
        if src[0] == "imm":
            self.set_reg(dkc, repr(src[1] & WORD_MASK), ())
        else:
            skc, smc = self.const(src[1], "k"), self.const(src[2], "m")
            se, sh = self.reg_expr(skc, smc)
            self.set_reg(dkc, se, (sh,))
        self.hist(instr, cost)
        self.tick(cost)

    def gen_move(self, instr: isa.Move) -> None:
        try:
            _check_alu_operands(instr, [instr.src])
            _check_alu_dst(instr, instr.dst)
            src_bank = _bank_of(instr.src)
            dst_bank = _bank_of(instr.dst)
            if (
                src_bank is not None
                and src_bank == dst_bank
                and src_bank in (Bank.L, Bank.S, Bank.LD, Bank.SD)
                and instr.src != instr.dst
            ):
                raise SimulatorError(
                    f"{instr}: no datapath within transfer bank {src_bank}"
                )
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        self._gen_copy(instr, 1)

    def gen_clone(self, instr: isa.Clone) -> None:
        if self.physical:
            return self.gen_raiser(
                SimulatorError("clone instruction survived register allocation"),
                (),
            )
        self._gen_copy(instr, 0)

    def gen_immed(self, instr: isa.Immed) -> None:
        try:
            _check_alu_dst(instr, instr.dst)
            dk = _intern_key(instr.dst, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        self.instr_start()
        cost = 1 if 0 <= instr.value < (1 << 16) else 2
        self.set_reg(self.const(dk, "k"), repr(instr.value & WORD_MASK), ())
        self.hist(instr, cost)
        self.tick(cost)

    def gen_mem(self, instr: isa.MemOp, next_label: int) -> None:
        try:
            _check_aggregate(instr)
            if instr.space == "rfifo" and instr.direction == "write":
                raise SimulatorError("the receive FIFO is read-only")
            if instr.space == "tfifo" and instr.direction == "read":
                raise SimulatorError("the transmit FIFO is write-only")
        except (SimulatorError, KeyError) as exc:
            # KeyError: _check_aggregate indexes READ_BANK/WRITE_BANK
            # before the fifo guards; replicate the exact exception.
            return self.gen_raiser(exc, ())
        try:
            addr = _read_spec(instr.addr, self.physical)
            reg_keys = []
            undef = {}
            for reg in instr.regs:
                key = _intern_key(reg, self.physical)
                reg_keys.append(key)
                undef[key] = f"read of undefined register {reg}"
        except SimulatorError:
            return self._gen_interp_mem(instr, next_label)
        self.instr_start()
        self.sync()
        self.clock_sync()  # issue math below reads the live clock
        n = len(reg_keys)
        cell = self.space_cell(instr.space)
        self.w(f"_s = {cell}")
        self.w("if _s is None:")
        self.w(f"    _s = memory[{instr.space!r}]")
        if addr[0] == "imm":
            addr_expr = repr(addr[1])
        else:
            akc, amc = self.const(addr[1], "k"), self.const(addr[2], "m")
            ae, ah = self.reg_expr(akc, amc)
            if ah is None:
                addr_expr = ae  # a local name or literal, reusable as-is
            else:
                self._reg_read_try("_a", ae, [ah])
                addr_expr = "_a"
        kcs = [self.const(k, "k") for k in reg_keys]
        # ``_s.issue(clock + 1, n)`` (and, for reads, ``_s.read``)
        # inlined on the space's timing constants resolved to bind-time
        # cells: identical math, identical side-effect order, and the
        # method's ``_check`` raises the identical error.  Spaces whose
        # names have no timing entry got a ``None`` cell at bind time
        # and take the method calls instead.
        if n % 2:
            align = f"{cell}_sd"
        else:
            align = f"{cell}_sd and ({addr_expr}) % 2"
        if instr.direction == "read":
            self.w(f"if {cell} is None:")
            self.ind += 1
            self.w(f"_f = _s.issue(clock + 1, {n})")
            self.w(f"_vals = _s.read({addr_expr}, {n})")
            for i, kc in enumerate(kcs):
                self.w(f"rv[{kc}] = _vals[{i}]")
            self.ind -= 1
            self.w("else:")
            self.ind += 1
            self.w("_t = clock + 1")
            self.w(f"_b = {cell}.busy_until")
            self.w("if _t < _b:")
            self.w("    _t = _b")
            if n > 1:
                self.w(f"_x = {cell}_pw * {n - 1}")
                self.w(f"{cell}.busy_until = _t + {cell}_oc + _x")
                self.w(f"_f = _t + {cell}_lt + _x")
            else:
                self.w(f"{cell}.busy_until = _t + {cell}_oc")
                self.w(f"_f = _t + {cell}_lt")
            self.w(
                f"if ({addr_expr}) < 0 or ({addr_expr}) + {n} > {cell}_sz"
                f" or ({align}):"
            )
            self.w(f"    {cell}._check({addr_expr}, {n})")
            self.w(f"{cell}.reads += 1")
            for i, kc in enumerate(kcs):
                off = addr_expr if i == 0 else f"({addr_expr}) + {i}"
                self.w(f"rv[{kc}] = {cell}_wg({off}, 0)")
            self.ind -= 1
        else:
            self.w(f"if {cell} is None:")
            self.ind += 1
            self.w(f"_f = _s.issue(clock + 1, {n})")
            self.ind -= 1
            self.w("else:")
            self.ind += 1
            self.w("_t = clock + 1")
            self.w(f"_b = {cell}.busy_until")
            self.w("if _t < _b:")
            self.w("    _t = _b")
            if n > 1:
                self.w(f"_x = {cell}_pw * {n - 1}")
                self.w(f"{cell}.busy_until = _t + {cell}_oc + _x")
                self.w(f"_f = _t + {cell}_lt + _x")
            else:
                self.w(f"{cell}.busy_until = _t + {cell}_oc")
                self.w(f"_f = _t + {cell}_lt")
            self.ind -= 1
            parts = []
            fallible = False
            for kc in kcs:
                mirrored = self.mirror.get(kc)
                if mirrored is None:
                    parts.append(f"rv[{kc}]")
                    fallible = True
                else:
                    parts.append(mirrored)
            reads = ", ".join(parts)
            if fallible:
                udc = self.const_dict(undef)
                self.w("try:")
                self.w(f"    _vals = [{reads}]")
                self.w("except KeyError as _e:")
                self.flush_into("    ")
                self.w(
                    f"    raise SimulatorError({udc}[_e.args[0]]) from None"
                )
            else:
                self.w(f"_vals = [{reads}]")
            self.w(f"_s.write({addr_expr}, _vals)")
        self.hist(instr, 1)
        self.tick(1)
        self.exit_blocked("_f", next_label)

    def const_dict(self, mapping: dict) -> str:
        """Intern a dict constant (hashed via its sorted item tuple)."""
        key = ("dict", tuple(sorted(mapping.items(), key=repr)))
        name = self._const_names.get(key)
        if name is None:
            name = f"_c{len(self._const_names)}_u"
            self._const_names[key] = name
            self.globals[name] = dict(mapping)
        return name

    def _gen_interp_mem(self, instr: isa.MemOp, next_label: int) -> None:
        """Memory ops whose operands fail to intern: delegate to the
        interpreter for exact midway-fault behaviour (side effects run
        before the register-key error), like the decoded tier does."""
        self.instr_start()
        self.sync()
        self.clock_sync()
        ic = self.const(instr, "i")
        self.w(f"cost, blocked = machine._execute_mem(thread, {ic}, clock)")
        if self.instrumented:
            self.w(f"_e = hist.setdefault({_opcode_of(instr)!r}, [0, 0])")
            self.w("_e[0] += 1")
            self.w("_e[1] += cost")
        self.w("clock += cost")
        self.w("if clock > max_cycles:")
        self.flush_into("    ")
        self.w(f"    {_MAX_RAISE}")
        self.exit_blocked("blocked", next_label)

    def gen_ring(self, instr: isa.RingOp, self_label: int,
                 next_label: int) -> None:
        if instr.kind == "enq":
            try:
                src = _read_spec(instr.reg, self.physical)
            except SimulatorError as exc:
                return self.gen_raiser(exc, ())
            self.instr_start()
            self.sync()
            self.clock_sync()
            self.w(f"_r = {self.ring_cell(instr.ring)}")
            self.w("if _r is None:")
            self.w(f"    _r = memory.ring({instr.ring!r})")
            if src[0] == "imm":
                self.w(f"_f = _r.try_enqueue(clock + 1, {src[1]!r})")
            else:
                skc, smc = self.const(src[1], "k"), self.const(src[2], "m")
                se, sh = self.reg_expr(skc, smc)
                if sh is None:
                    self.w(f"_f = _r.try_enqueue(clock + 1, {se})")
                else:
                    self._reg_read_try("_v", se, [sh])
                    self.w("_f = _r.try_enqueue(clock + 1, _v)")
        else:
            try:
                dk = _intern_key(instr.reg, self.physical)
            except SimulatorError as exc:
                return self.gen_raiser(exc, ())
            self.instr_start()
            self.sync()
            self.clock_sync()
            self.w(f"_r = {self.ring_cell(instr.ring)}")
            self.w("if _r is None:")
            self.w(f"    _r = memory.ring({instr.ring!r})")
            self.w("_p = _r.try_dequeue(clock + 1)")
        self.hist(instr, 1)
        self.tick(1)
        if instr.kind == "enq":
            self.w("if _f is None:")
            self.ind += 1
            self.exit_retry(self_label, RING_RETRY)
            self.ind -= 1
            self.exit_blocked("_f", next_label)
        else:
            self.w("if _p is None:")
            self.ind += 1
            self.exit_retry(self_label, RING_RETRY)
            self.ind -= 1
            self.w(f"rv[{self.const(dk, 'k')}] = _p[0]")
            self.exit_blocked("_p[1]", next_label)

    def gen_hash(self, instr: isa.HashInstr) -> None:
        try:
            src_bank, dst_bank = _bank_of(instr.src), _bank_of(instr.dst)
            if src_bank is not None:
                if src_bank is not Bank.S or dst_bank is not Bank.L:
                    raise SimulatorError(f"{instr}: hash reads S and writes L")
                if instr.src.index != instr.dst.index:
                    raise SimulatorError(
                        f"{instr}: hash dst/src must share a register "
                        "number (SameReg)"
                    )
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        prior: list = []
        try:
            src = _read_spec(instr.src, self.physical)
            if src[0] == "reg":
                prior.append((src[1], src[2]))
            dk = _intern_key(instr.dst, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, prior)
        self.instr_start()
        cost = 1 + HASH_LATENCY
        dkc = self.const(dk, "k")
        sfold = self.literal_of(src)
        if src[0] == "imm":
            self.set_reg(dkc, repr(hash48(src[1])), ())
        elif sfold is not None:
            self.set_reg(dkc, repr(hash48(sfold)), ())
        else:
            skc, smc = self.const(src[1], "k"), self.const(src[2], "m")
            se, sh = self.reg_expr(skc, smc)
            self.set_reg(dkc, f"hash48({se})", (sh,))
        self.hist(instr, cost)
        self.tick(cost)

    def gen_csr_rd(self, instr: isa.CsrRd) -> None:
        try:
            dk = _intern_key(instr.dst, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        self.instr_start()
        self.set_reg(
            self.const(dk, "k"), f"csrs.get({instr.csr!r}, 0) & 4294967295", ()
        )
        self.hist(instr, 3)
        self.tick(3)

    def gen_csr_wr(self, instr: isa.CsrWr) -> None:
        try:
            src = _read_spec(instr.src, self.physical)
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        self.instr_start()
        if src[0] == "imm":
            self.w(f"csrs[{instr.csr!r}] = {src[1]!r}")
        else:
            skc, smc = self.const(src[1], "k"), self.const(src[2], "m")
            se, sh = self.reg_expr(skc, smc)
            self.emit_assign(f"csrs[{instr.csr!r}]", se, (sh,))
        self.hist(instr, 3)
        self.tick(3)

    def gen_ctx_arb(self, instr: isa.CtxArb, next_label: int) -> None:
        self.instr_start()
        self.hist(instr, 1)
        self.tick(1)
        self.exit_yield(next_label)

    def gen_lock(self, instr: isa.LockInstr, self_label: int) -> None:
        self.instr_start()
        self.clock_sync()  # budget error beats the re-acquire/unlock error
        number = instr.number
        self.w("tid = thread.tid")
        if instr.kind == "lock":
            self.w(f"_h = locks.get({number!r})")
            self.w("if _h is not None:")
            self.ind += 1
            self.w("if _h == tid:")
            self.flush_into("    ")
            self.w(
                '    raise SimulatorError(f"thread {tid} '
                f're-acquiring lock {number}")'
            )
            # Spin: the thread retries this instruction later.  The
            # arm's deferred cycle charge is forked like ``pending``.
            saved_cycles = self.cycles_pending
            self.hist(instr, 1)
            self.tick(1)
            self.exit_retry(self_label, 4)
            self.cycles_pending = saved_cycles
            self.ind -= 1
            self.w(f"locks[{number!r}] = tid")
            self.hist(instr, 1)
            self.tick(1)
        else:
            self.w(f"_h = locks.get({number!r})")
            self.w("if _h != tid:")
            self.flush_into("    ")
            self.w(
                '    raise SimulatorError(f"thread {tid} '
                f'unlocking lock {number} held by {{_h}}")'
            )
            self.w(f"del locks[{number!r}]")
            self.hist(instr, 1)
            self.tick(1)

    def gen_br(self, instr: isa.Br) -> None:
        self.instr_start()
        self.hist(instr, 2)
        self.tick(2)
        self.follow(instr.target, 0)

    def gen_br_cmp(self, instr: isa.BrCmp) -> None:
        try:
            _check_alu_operands(instr, instr.uses())
        except SimulatorError as exc:
            return self.gen_raiser(exc, ())
        prior: list = []
        try:
            a = _read_spec(instr.a, self.physical)
            if a[0] == "reg":
                prior.append((a[1], a[2]))
            b = _read_spec(instr.b, self.physical)
            if b[0] == "reg":
                prior.append((b[1], b[2]))
            fn = _CMP_FNS.get(instr.cmp)
            if fn is None:
                raise SimulatorError(f"unknown comparison '{instr.cmp}'")
        except SimulatorError as exc:
            return self.gen_raiser(exc, prior)
        self.instr_start()
        op = _CMP_EXPRS[instr.cmp]
        # Comparison operands stay raw, like the decoded tier.  Mirror
        # literals fold like immediates (they ARE the register value).
        afold = self.literal_of(a)
        bfold = self.literal_of(b)
        if (a[0] == "imm" or afold is not None) and (
            b[0] == "imm" or bfold is not None
        ):
            av = a[1] if a[0] == "imm" else afold
            bv = b[1] if b[0] == "imm" else bfold
            self.hist(instr, 2)
            self.tick(2)
            taken = instr.then_target if fn(av, bv) else instr.else_target
            self.follow(taken, 0)
            return
        if b[0] == "imm":
            akc, amc = self.const(a[1], "k"), self.const(a[2], "m")
            ae, ah = self.reg_expr(akc, amc)
            self.emit_assign("_t", f"{ae} {op} {b[1]!r}", (ah,))
        elif a[0] == "imm":
            bkc, bmc = self.const(b[1], "k"), self.const(b[2], "m")
            be, bh = self.reg_expr(bkc, bmc)
            self.emit_assign("_t", f"{a[1]!r} {op} {be}", (bh,))
        else:
            akc, amc = self.const(a[1], "k"), self.const(a[2], "m")
            bkc, bmc = self.const(b[1], "k"), self.const(b[2], "m")
            ae, ah = self.reg_expr(akc, amc)
            be, bh = self.reg_expr(bkc, bmc)
            self.emit_assign("_t", f"{ae} {op} {be}", (ah, bh))
        self.hist(instr, 2)
        self.tick(2)
        # Both arms continue inline where budget allows; each arm always
        # ends closed (return / computed jump), so no fall-through leaks
        # from the then-arm into the else-arm.  ``pending``, the deferred
        # cycle charge, and the value mirror are forked: the arms
        # flush/extend their own copies.
        saved = self.pending
        saved_cycles = self.cycles_pending
        saved_mirror = dict(self.mirror)
        self.w("if _t:")
        self.ind += 1
        self.follow(instr.then_target, 0)
        self.ind -= 1
        self.pending = saved
        self.cycles_pending = saved_cycles
        self.mirror = saved_mirror
        self.open = True
        self.follow(instr.else_target, 0)

    def gen_halt(self, instr: isa.HaltInstr) -> None:
        specs: list = []
        prior: list = []
        hmsgs: dict = {}
        try:
            for result in instr.results:
                spec = _read_spec(result, self.physical)
                if spec[0] == "reg":
                    specs.append((True, spec[1]))
                    prior.append((spec[1], spec[2]))
                    hmsgs[spec[1]] = spec[2]
                else:
                    specs.append((False, spec[1]))
        except SimulatorError as exc:
            return self.gen_raiser(exc, prior)
        self.instr_start()
        self.clock_sync()  # halt body can raise; restart() runs user code
        parts = []
        fallible = False
        for is_reg, payload in specs:
            if not is_reg:
                parts.append(repr(payload))
                continue
            kc = self.const(payload, "k")
            mirrored = self.mirror.get(kc)
            if mirrored is None:
                parts.append(f"rv[{kc}]")
                fallible = True
            else:
                parts.append(mirrored)
        tup = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        if hmsgs and fallible:
            udc = self.const_dict(hmsgs)
            self.w("try:")
            self.w(f"    _vals = {tup}")
            self.w("except KeyError as _e:")
            self.flush_into("    ")
            self.w(f"    raise SimulatorError({udc}[_e.args[0]]) from None")
        else:
            self.w(f"_vals = {tup}")
        self.sync()  # restart() runs the input provider, which may raise
        self.w("thread.halt_values = _vals")
        self.w("results.append((thread.tid, _vals))")
        self.w("stats.iterations += 1")
        self.w("thread.iteration += 1")
        self.w("thread.restart()")
        self.hist(instr, 1)
        self.tick(1)
        # thread.load (via restart) already reset cpc to the entry label.
        self.exit_yield(None)

    # -- segment / graph assembly --------------------------------------------

    def gen_instr(self, block: str, index: int, instr: isa.Instr) -> None:
        nxt = self.labels.get((block, index + 1))
        if isinstance(instr, isa.Alu):
            self.gen_alu(instr)
        elif isinstance(instr, isa.Move):
            self.gen_move(instr)
        elif isinstance(instr, isa.Clone):
            self.gen_clone(instr)
        elif isinstance(instr, isa.Immed):
            self.gen_immed(instr)
        elif isinstance(instr, isa.MemOp):
            self.gen_mem(instr, nxt)
        elif isinstance(instr, isa.RingOp):
            self.gen_ring(instr, self.labels[(block, index)], nxt)
        elif isinstance(instr, isa.HashInstr):
            self.gen_hash(instr)
        elif isinstance(instr, isa.CsrRd):
            self.gen_csr_rd(instr)
        elif isinstance(instr, isa.CsrWr):
            self.gen_csr_wr(instr)
        elif isinstance(instr, isa.CtxArb):
            self.gen_ctx_arb(instr, nxt)
        elif isinstance(instr, isa.LockInstr):
            self.gen_lock(instr, self.labels[(block, index)])
        elif isinstance(instr, isa.Br):
            self.gen_br(instr)
        elif isinstance(instr, isa.BrCmp):
            self.gen_br_cmp(instr)
        elif isinstance(instr, isa.HaltInstr):
            self.gen_halt(instr)
        else:
            raise UnsupportedOp(f"no codegen for {type(instr).__name__}")

    def assign_labels(self) -> list[str]:
        """Number every resume point; the entry block's head is 0."""
        graph = self.graph
        order = [graph.entry] + [
            label for label in graph.blocks if label != graph.entry
        ]
        next_id = 0
        self.label_starts: dict[str, list[int]] = {}
        for label in order:
            instrs = graph.blocks[label].instrs
            positions = {0}
            for i, instr in enumerate(instrs):
                if isinstance(instr, (isa.RingOp, isa.LockInstr)):
                    positions.add(i)  # spin-retry re-executes in place
                if isinstance(instr, (isa.MemOp, isa.RingOp, isa.CtxArb)):
                    positions.add(i + 1)  # resume after the block/yield
            starts = [i for i in sorted(positions) if i < len(instrs)]
            self.label_starts[label] = starts
            for i in starts:
                self.labels[(label, i)] = next_id
                next_id += 1
        return order

    def gen_segment(self, block: str, start: int, end: int) -> list[str]:
        self.buf = []
        self.ind = 0
        self.pending = 0
        self.cycles_pending = 0
        self.open = True
        self.visited = {(block, start)}
        self.inline_left = 16
        self.mirror = {}
        self.tmp = 0
        self.emit_range(block, start, end)
        return self.buf

    def emit_range(self, block: str, start: int, end: int) -> None:
        instrs = self.graph.blocks[block].instrs
        for index in range(start, end):
            self.gen_instr(block, index, instrs[index])
            if not self.open:
                return
        # Fell through onto a labelled instruction (ring/lock spin
        # target): continue there.
        self.follow(block, end)

    def follow(self, block: str, index: int) -> None:
        """Continue emission at label ``(block, index)``.

        Inlines the target (tail duplication) when this segment has not
        emitted it yet and budget remains — hot paths then run
        straight-line instead of bouncing through the dispatch tree on
        every branch — otherwise emits a computed jump.  Back-edges are
        always in ``visited`` (every followed label is), so loops
        dispatch once per iteration and emission terminates."""
        key = (block, index)
        if key in self.visited or self.inline_left <= 0:
            self.goto(self.labels[key])
            return
        self.visited.add(key)
        self.inline_left -= 1
        starts = self.label_starts[block]
        size = len(self.graph.blocks[block].instrs)
        end = min(
            (s for s in starts if s > index), default=size
        )
        self.emit_range(block, index, end)

    def emit_dispatch(self, out: list[str], lo: int, hi: int,
                      ind: int, exit_stmt: str = "return clock") -> None:
        pad = "    " * ind
        if hi - lo == 1:
            if exit_stmt == "return clock":
                for line in self._segments[lo]:
                    out.append(pad + line)
            else:
                # The master-loop variant reuses the same segment text
                # with slice exits rewritten to ``break`` (out of the
                # dispatch loop, into the scheduler's bookkeeping).
                for line in self._segments[lo]:
                    if line.endswith("return clock"):
                        line = line[: -len("return clock")] + exit_stmt
                    out.append(pad + line)
            return
        mid = (lo + hi) // 2
        out.append(pad + f"if pc < {mid}:")
        self.emit_dispatch(out, lo, mid, ind + 1, exit_stmt)
        out.append(pad + "else:")
        self.emit_dispatch(out, mid, hi, ind + 1, exit_stmt)

    def generate(self) -> _CompiledGraph:
        graph = self.graph
        order = self.assign_labels()
        # Build each label's segment: instructions from the label to the
        # next label in the block (or the block's end).
        by_block: dict[str, list[int]] = {}
        for (block, index) in self.labels:
            by_block.setdefault(block, []).append(index)
        for block in order:
            starts = sorted(by_block[block])
            size = len(graph.blocks[block].instrs)
            for pos, start in enumerate(starts):
                end = starts[pos + 1] if pos + 1 < len(starts) else size
                self._segments.append(self.gen_segment(block, start, end))

        uses = {type(i).__name__ for _, _, i in graph.instructions()}
        # Factory form: machine-lifetime state lives in closure cells
        # (one bind per Machine); the per-slice prologue loads only the
        # per-thread state.  Every frozen attribute is assigned exactly
        # once in Machine.__init__ and mutated in place afterwards.
        lines = ["def _bind(machine):"]
        lines.append("    max_cycles = machine.max_cycles")
        if uses & {"MemOp", "RingOp"}:
            lines.append("    memory = machine.memory")
        if "LockInstr" in uses:
            lines.append("    locks = machine.locks")
        if uses & {"CsrRd", "CsrWr"}:
            lines.append("    csrs = machine.csrs")
        if "HaltInstr" in uses:
            lines.append("    results = machine.results")
        if self.instrumented:
            lines.append("    hist = machine._opcode_hist")
        for name, var in self.space_cells.items():
            lines.append(f"    {var} = memory.spaces.get({name!r})")
            lines.append(
                f"    if {var} is not None and {var}._occupancy is not None"
                f" and {var}._latency is not None:"
            )
            lines.append(
                f"        {var}_oc = {var}._occupancy;"
                f" {var}_lt = {var}._latency;"
                f" {var}_pw = {var}._per_word;"
                f" {var}_sz = {var}.size;"
                f" {var}_sd = {var}._is_sdram;"
                f" {var}_wg = {var}.words.get"
            )
            lines.append("    else:")
            lines.append(
                f"        {var} = None;"
                f" {var}_oc = {var}_lt = {var}_pw = {var}_sz = 0;"
                f" {var}_sd = False; {var}_wg = None"
            )
        for name, var in self.ring_cells.items():
            lines.append(f"    {var} = memory.rings.get({name!r})")
        lines.append("    def _run_slice(thread, clock):")
        lines.append("        rv = thread.rv")
        lines.append("        stats = thread.stats")
        lines.append("        icount = 0")
        lines.append("        pc = thread.cpc")
        lines.append("        try:")
        lines.append("            while True:")
        self.emit_dispatch(lines, 0, len(self._segments), 4)
        lines.append("        finally:")
        lines.append("            stats.instructions += icount")
        # The master-loop variant: ``Machine.run``'s scheduler with the
        # dispatch tree inlined, so a whole single-engine run is one
        # generated call — no per-slice Python function call, which is a
        # large share of a compiled slice's cost.  The segment text is
        # shared with ``_run_slice`` (exits rewritten ``return clock`` →
        # ``break``); the post-slice bookkeeping below replicates
        # ``Machine.run``'s loop statement for statement, so scheduling
        # order, budget checks and stall accounting stay identical.
        # ``service()``-driven external schedulers (repro.ixp.net) keep
        # using ``_run_slice``.
        lines.append("    def _run_loop(ready, clock):")
        lines.append("        while ready:")
        lines.append("            ready_at, tid, thread = heappop(ready)")
        lines.append("            if ready_at > clock:")
        lines.append("                clock = ready_at")
        lines.append("            rv = thread.rv")
        lines.append("            stats = thread.stats")
        lines.append("            icount = 0")
        lines.append("            pc = thread.cpc")
        lines.append("            try:")
        lines.append("                while True:")
        self.emit_dispatch(lines, 0, len(self._segments), 5, "break")
        lines.append("            finally:")
        lines.append("                stats.instructions += icount")
        lines.append("            if clock > max_cycles:")
        lines.append(f"                {_MAX_RAISE}")
        lines.append("            if not thread.done:")
        lines.append(
            "                heappush(ready,"
            " (thread.ready_at, tid, thread))"
        )
        lines.append("        return clock")
        lines.append("    return _run_slice, _run_loop")
        source = "\n".join(lines) + "\n"
        code = compile(source, f"<codegen:{graph.entry}>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        return _CompiledGraph(
            namespace["_bind"],
            self.count,
            len(self._segments),
            source,
            self.physical,
            self.instrumented,
        )


#: (id(graph), physical, instrumented) → compiled program (or None when
#: the generator declined and the Machine must fall back to the decoded
#: tier).  Entries evict when the graph is garbage collected, so id()
#: reuse cannot alias — same scheme as ``machine._DECODED``.
_COMPILED: dict[tuple[int, bool, bool], _CompiledGraph | None] = {}


def compiled_graph(
    graph: FlowGraph,
    physical: bool,
    instrumented: bool = False,
    tracer=None,
) -> _CompiledGraph | None:
    """Compile ``graph`` to one generated Python function, once per
    (graph, mode, instrumentation); ``None`` means "not compilable —
    use the decoded tier" (also memoized)."""
    key = (id(graph), bool(physical), bool(instrumented))
    if key in _COMPILED:
        return _COMPILED[key]
    tracer = ensure(tracer)
    with tracer.span(
        "simulate.codegen", physical=int(bool(physical))
    ) as sp:
        graph.validate()
        try:
            compiled = _Codegen(
                graph, bool(physical), bool(instrumented)
            ).generate()
        except UnsupportedOp:
            compiled = None
        if sp:
            if compiled is None:
                sp.add(fallback=1)
            else:
                sp.add(
                    blocks=len(graph.blocks),
                    instructions=compiled.instructions,
                    labels=compiled.labels,
                    source_lines=compiled.source.count("\n"),
                )
    _COMPILED[key] = compiled
    weakref.finalize(graph, _COMPILED.pop, key, None)
    return compiled


def clear_cache() -> None:
    """Drop every cached compiled function (used by fuzz injection
    probes that patch the generator templates mid-process)."""
    _COMPILED.clear()
