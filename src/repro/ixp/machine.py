"""Cycle-approximate IXP1200 micro-engine simulator.

Executes a flowgraph in one of two register modes:

- **virtual** — operands are :class:`repro.ixp.isa.Temp`; the register
  file is unbounded.  Used to validate compiler output *before* register
  allocation (and as the semantic reference the allocated code must
  match).
- **physical** — operands are :class:`repro.ixp.isa.PhysReg`; the
  simulator enforces every datapath restriction of Figure 1: ALU operand
  bank legality, aggregate adjacency in transfer banks, no moves within a
  transfer bank, hash-unit same-register-number, and bank sizes.

Hardware-supported multithreading is modeled the way the chip works: a
thread runs until it issues a memory reference (or ``ctx_arb``), then the
micro-engine swaps to the next ready thread with zero overhead while the
reference completes.  Each memory space services one transfer at a time,
so contention lengthens the critical path exactly where the paper says it
does.

Cycle costs: ALU/move/branch-not-taken 1 cycle, taken branches 2 (the
IXP's deferred branch slot, unfilled), ``immed`` 1 (2 for constants wider
than 16 bits), csr 3, hash 1 + unit latency, memory = issue 1 +
space latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulatorError
from repro.ixp import isa
from repro.ixp.banks import (
    ALU_INPUT_BANKS,
    ALU_OUTPUT_BANKS,
    BANK_SIZES,
    Bank,
    READ_BANK,
    WRITE_BANK,
)
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.memory import MemorySystem
from repro.trace import ensure

WORD_MASK = 0xFFFFFFFF
HASH_LATENCY = 10
CLOCK_MHZ = 233  # IXP1200 in the paper (Section 11)


def _alu_eval(op: str, a: int, b: int | None) -> int:
    if op == "add":
        return (a + (b or 0)) & WORD_MASK
    if op == "sub":
        return (a - (b or 0)) & WORD_MASK
    if op == "and":
        return a & (b or 0)
    if op == "or":
        return a | (b or 0)
    if op == "xor":
        return a ^ (b or 0)
    if op == "shl":
        return (a << ((b or 0) & 31)) & WORD_MASK
    if op == "shr":
        return (a & WORD_MASK) >> ((b or 0) & 31)
    if op == "not":
        return ~a & WORD_MASK
    if op == "neg":
        return -a & WORD_MASK
    raise SimulatorError(f"unknown ALU op '{op}'")


def _cmp_eval(op: str, a: int, b: int) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    raise SimulatorError(f"unknown comparison '{op}'")


def hash48(value: int) -> int:
    """The hash unit: a deterministic 32-bit mix (stand-in for the
    IXP1200's 48-bit polynomial hash)."""
    value &= WORD_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & WORD_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & WORD_MASK
    value ^= value >> 16
    return value


@dataclass
class RegisterFile:
    """Per-thread registers, keyed by Temp name or (bank, index)."""

    physical: bool
    values: dict[object, int] = field(default_factory=dict)

    def key(self, reg: isa.Reg) -> object:
        if isinstance(reg, isa.Temp):
            if self.physical:
                raise SimulatorError(
                    f"virtual register {reg} in physical-mode execution"
                )
            return reg.name
        if isinstance(reg, isa.PhysReg):
            if not self.physical:
                raise SimulatorError(
                    f"physical register {reg} in virtual-mode execution"
                )
            if reg.bank not in BANK_SIZES:
                raise SimulatorError(f"register in non-register bank {reg}")
            if not 0 <= reg.index < BANK_SIZES[reg.bank]:
                raise SimulatorError(f"register index out of range: {reg}")
            return (reg.bank, reg.index)
        raise SimulatorError(f"bad register operand {reg!r}")

    def read(self, reg: isa.Reg | isa.Imm) -> int:
        if isinstance(reg, isa.Imm):
            return reg.value
        key = self.key(reg)
        if key not in self.values:
            raise SimulatorError(f"read of undefined register {reg}")
        return self.values[key]

    def write(self, reg: isa.Reg, value: int) -> None:
        self.values[self.key(reg)] = value & WORD_MASK


def _bank_of(reg: isa.Reg) -> Bank | None:
    return reg.bank if isinstance(reg, isa.PhysReg) else None


def _check_alu_operands(instr_name: str, ops: list[isa.Reg]) -> None:
    """Enforce Figure 1: inputs from L/LD/A/B; at most one operand from
    each of A, B, and L∪LD."""
    banks = [b for b in (_bank_of(op) for op in ops) if b is not None]
    for bank in banks:
        if bank not in ALU_INPUT_BANKS:
            raise SimulatorError(
                f"{instr_name}: operand bank {bank} cannot feed the ALU"
            )
    if sum(1 for b in banks if b is Bank.A) > 1:
        raise SimulatorError(f"{instr_name}: two operands from bank A")
    if sum(1 for b in banks if b is Bank.B) > 1:
        raise SimulatorError(f"{instr_name}: two operands from bank B")
    if sum(1 for b in banks if b in (Bank.L, Bank.LD)) > 1:
        raise SimulatorError(
            f"{instr_name}: two operands from transfer banks"
        )


def _check_alu_dst(instr_name: str, dst: isa.Reg) -> None:
    bank = _bank_of(dst)
    if bank is not None and bank not in ALU_OUTPUT_BANKS:
        raise SimulatorError(
            f"{instr_name}: ALU result cannot go to bank {bank}"
        )


def _check_aggregate(instr: isa.MemOp) -> None:
    expected = (
        READ_BANK[instr.space]
        if instr.direction == "read"
        else WRITE_BANK[instr.space]
    )
    indices = []
    for reg in instr.regs:
        bank = _bank_of(reg)
        if bank is None:
            return  # virtual mode: nothing to check
        if bank is not expected:
            raise SimulatorError(
                f"{instr}: aggregate register {reg} not in bank {expected}"
            )
        indices.append(reg.index)
    if indices != list(range(indices[0], indices[0] + len(indices))):
        raise SimulatorError(f"{instr}: aggregate registers not adjacent")
    addr_bank = _bank_of(instr.addr)
    if addr_bank is not None and addr_bank not in (Bank.A, Bank.B):
        raise SimulatorError(f"{instr}: address must come from A or B")


@dataclass
class ThreadStats:
    instructions: int = 0
    iterations: int = 0
    mem_stall_cycles: int = 0


@dataclass
class RunResult:
    cycles: int
    thread_stats: list[ThreadStats]
    results: list[tuple[int, tuple[int, ...]]]  # (thread, halt values)

    @property
    def instructions(self) -> int:
        return sum(t.instructions for t in self.thread_stats)

    def throughput_mbps(self, payload_bytes: int, clock_mhz: int = CLOCK_MHZ) -> float:
        """Bits of payload processed per second at ``clock_mhz``."""
        if self.cycles == 0:
            return 0.0
        iterations = sum(t.iterations for t in self.thread_stats)
        seconds = self.cycles / (clock_mhz * 1e6)
        return iterations * payload_bytes * 8 / seconds / 1e6


class _Thread:
    def __init__(self, tid: int, machine: "Machine"):
        self.tid = tid
        self.machine = machine
        self.regs = RegisterFile(machine.physical)
        self.block = machine.graph.entry
        self.index = 0
        self.ready_at = 0
        self.done = False
        self.stats = ThreadStats()
        self.iteration = 0

    def restart(self) -> bool:
        inputs = self.machine.input_provider(self.tid, self.iteration)
        if inputs is None:
            self.done = True
            return False
        self.regs = RegisterFile(self.machine.physical)
        for name, value in inputs.items():
            if self.machine.physical:
                self.regs.values[name] = value & WORD_MASK
            else:
                self.regs.values[name] = value & WORD_MASK
        self.block = self.machine.graph.entry
        self.index = 0
        return True


class Machine:
    """N hardware threads executing one flowgraph over a memory system."""

    def __init__(
        self,
        graph: FlowGraph,
        memory: MemorySystem | None = None,
        threads: int = 1,
        physical: bool | None = None,
        input_provider: Callable[[int, int], dict | None] | None = None,
        max_cycles: int = 50_000_000,
        tracer=None,
    ):
        graph.validate()
        self.graph = graph
        self.tracer = ensure(tracer)
        #: opcode → [issue count, cycles]; only kept while tracing so the
        #: per-instruction cost of the histogram is one ``is None`` test.
        self._opcode_hist: dict[str, list[int]] | None = (
            {} if self.tracer.enabled else None
        )
        self.memory = memory or MemorySystem.create()
        if physical is None:
            physical = _guess_physical(graph)
        self.physical = physical
        self.input_provider = input_provider or (
            lambda tid, it: {} if it == 0 else None
        )
        self.threads = [_Thread(i, self) for i in range(threads)]
        self.max_cycles = max_cycles
        self.results: list[tuple[int, tuple[int, ...]]] = []
        self.csrs: dict[int, int] = {}
        #: lock bit → holding thread id (inter-thread mutual exclusion)
        self.locks: dict[int, int] = {}

    # -- execution ------------------------------------------------------------

    def run(self) -> RunResult:
        with self.tracer.span("simulate") as sp:
            clock = 0
            ready: list[tuple[int, int, int]] = []  # (ready_at, tid, seq)
            seq = 0
            for thread in self.threads:
                if thread.restart():
                    heapq.heappush(ready, (0, thread.tid, seq))
                    seq += 1
            while ready:
                ready_at, tid, _ = heapq.heappop(ready)
                clock = max(clock, ready_at)
                thread = self.threads[tid]
                clock = self._run_thread(thread, clock)
                if clock > self.max_cycles:
                    raise SimulatorError(
                        f"simulation exceeded {self.max_cycles} cycles"
                    )
                if not thread.done:
                    heapq.heappush(ready, (thread.ready_at, tid, seq))
                    seq += 1
            result = RunResult(
                clock, [t.stats for t in self.threads], self.results
            )
            if sp:
                sp.add(
                    cycles=result.cycles,
                    instructions=result.instructions,
                    threads=len(self.threads),
                )
                for opcode, (count, cycles) in sorted(
                    (self._opcode_hist or {}).items()
                ):
                    sp.add(**{
                        f"count.{opcode}": count,
                        f"cycles.{opcode}": cycles,
                    })
        return result

    def _record_opcode(self, instr: isa.Instr, cost: int) -> None:
        entry = self._opcode_hist.setdefault(_opcode_of(instr), [0, 0])
        entry[0] += 1
        entry[1] += cost

    def _run_thread(self, thread: _Thread, clock: int) -> int:
        """Run until the thread blocks, halts, or yields; returns clock."""
        while True:
            block = self.graph.blocks[thread.block]
            instr = block.instrs[thread.index]
            thread.stats.instructions += 1
            cost, blocked = self._execute(thread, instr, clock)
            if self._opcode_hist is not None:
                self._record_opcode(instr, cost)
            clock += cost
            # The outer scheduler only sees the clock when this thread
            # blocks or yields, so a pure-ALU infinite loop would spin
            # here forever; enforce the budget per instruction as well.
            if clock > self.max_cycles:
                raise SimulatorError(
                    f"simulation exceeded {self.max_cycles} cycles"
                )
            if blocked:
                thread.ready_at = blocked
                thread.stats.mem_stall_cycles += max(0, blocked - clock)
                return clock
            if thread.done or isinstance(instr, isa.CtxArb):
                thread.ready_at = clock
                return clock
            if isinstance(instr, isa.HaltInstr):
                thread.ready_at = clock
                return clock

    def _execute(
        self, thread: _Thread, instr: isa.Instr, clock: int
    ) -> tuple[int, int | None]:
        """Execute one instruction; returns (cycle cost, blocked-until)."""
        regs = thread.regs
        if isinstance(instr, isa.Alu):
            _check_alu_operands(str(instr), instr.uses())
            _check_alu_dst(str(instr), instr.dst)
            a = regs.read(instr.a)
            b = regs.read(instr.b) if instr.b is not None else None
            regs.write(instr.dst, _alu_eval(instr.op, a, b))
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.Move):
            _check_alu_operands(str(instr), [instr.src])
            _check_alu_dst(str(instr), instr.dst)
            src_bank = _bank_of(instr.src)
            dst_bank = _bank_of(instr.dst)
            if (
                src_bank is not None
                and src_bank == dst_bank
                and src_bank in (Bank.L, Bank.S, Bank.LD, Bank.SD)
                and instr.src != instr.dst
            ):
                raise SimulatorError(
                    f"{instr}: no datapath within transfer bank {src_bank}"
                )
            regs.write(instr.dst, regs.read(instr.src))
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.Clone):
            # Clones are pseudo-instructions; in virtual mode they copy,
            # in physical mode they should have been eliminated.
            if self.physical:
                raise SimulatorError(
                    "clone instruction survived register allocation"
                )
            regs.write(instr.dst, regs.read(instr.src))
            self._advance(thread)
            return 0, None
        if isinstance(instr, isa.Immed):
            _check_alu_dst(str(instr), instr.dst)
            regs.write(instr.dst, instr.value)
            self._advance(thread)
            return 1 if 0 <= instr.value < (1 << 16) else 2, None
        if isinstance(instr, isa.MemOp):
            return self._execute_mem(thread, instr, clock)
        if isinstance(instr, isa.HashInstr):
            src_bank, dst_bank = _bank_of(instr.src), _bank_of(instr.dst)
            if src_bank is not None:
                if src_bank is not Bank.S or dst_bank is not Bank.L:
                    raise SimulatorError(
                        f"{instr}: hash reads S and writes L"
                    )
                assert isinstance(instr.src, isa.PhysReg)
                assert isinstance(instr.dst, isa.PhysReg)
                if instr.src.index != instr.dst.index:
                    raise SimulatorError(
                        f"{instr}: hash dst/src must share a register "
                        "number (SameReg)"
                    )
            regs.write(instr.dst, hash48(regs.read(instr.src)))
            self._advance(thread)
            return 1 + HASH_LATENCY, None
        if isinstance(instr, isa.CsrRd):
            regs.write(instr.dst, self.csrs.get(instr.csr, 0))
            self._advance(thread)
            return 3, None
        if isinstance(instr, isa.CsrWr):
            self.csrs[instr.csr] = regs.read(instr.src)
            self._advance(thread)
            return 3, None
        if isinstance(instr, isa.CtxArb):
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.LockInstr):
            return self._execute_lock(thread, instr, clock)
        if isinstance(instr, isa.Br):
            thread.block = instr.target
            thread.index = 0
            return 2, None
        if isinstance(instr, isa.BrCmp):
            _check_alu_operands(str(instr), instr.uses())
            a = regs.read(instr.a)
            b = regs.read(instr.b)
            taken = _cmp_eval(instr.cmp, a, b)
            thread.block = instr.then_target if taken else instr.else_target
            thread.index = 0
            return 2, None
        if isinstance(instr, isa.HaltInstr):
            values = tuple(regs.read(r) for r in instr.results)
            self.results.append((thread.tid, values))
            thread.stats.iterations += 1
            thread.iteration += 1
            thread.restart()
            return 1, None
        raise SimulatorError(f"unhandled instruction {instr!r}")

    def _execute_lock(
        self, thread: _Thread, instr: isa.LockInstr, clock: int
    ) -> tuple[int, int | None]:
        holder = self.locks.get(instr.number)
        if instr.kind == "lock":
            if holder is None:
                self.locks[instr.number] = thread.tid
                self._advance(thread)
                return 1, None
            if holder == thread.tid:
                raise SimulatorError(
                    f"thread {thread.tid} re-acquiring lock {instr.number}"
                )
            # Spin: yield and retry this instruction later.
            return 1, clock + 4
        if holder != thread.tid:
            raise SimulatorError(
                f"thread {thread.tid} unlocking lock {instr.number} held "
                f"by {holder}"
            )
        del self.locks[instr.number]
        self._advance(thread)
        return 1, None

    def _execute_mem(
        self, thread: _Thread, instr: isa.MemOp, clock: int
    ) -> tuple[int, int | None]:
        _check_aggregate(instr)
        if instr.space == "rfifo" and instr.direction == "write":
            raise SimulatorError("the receive FIFO is read-only")
        if instr.space == "tfifo" and instr.direction == "read":
            raise SimulatorError("the transmit FIFO is write-only")
        space = self.memory[instr.space]
        addr = thread.regs.read(instr.addr)
        finish = space.issue(clock + 1, len(instr.regs))
        if instr.direction == "read":
            values = space.read(addr, len(instr.regs))
            for reg, value in zip(instr.regs, values):
                thread.regs.write(reg, value)
        else:
            space.write(addr, [thread.regs.read(r) for r in instr.regs])
        self._advance(thread)
        # Issue costs 1 cycle; the thread then sleeps until the data is
        # back while other threads run.
        return 1, finish

    def _advance(self, thread: _Thread) -> None:
        thread.index += 1


def _opcode_of(instr: isa.Instr) -> str:
    """Histogram key for the tracer's per-opcode cycle counters."""
    if isinstance(instr, isa.Alu):
        return f"alu.{instr.op}"
    if isinstance(instr, isa.BrCmp):
        return f"br.{instr.cmp}"
    if isinstance(instr, isa.MemOp):
        return f"{instr.space}.{instr.direction}"
    if isinstance(instr, isa.LockInstr):
        return f"lock.{instr.kind}"
    return {
        isa.Move: "move",
        isa.Clone: "clone",
        isa.Immed: "immed",
        isa.HashInstr: "hash",
        isa.CsrRd: "csr_rd",
        isa.CsrWr: "csr_wr",
        isa.CtxArb: "ctx_arb",
        isa.Br: "br",
        isa.HaltInstr: "halt",
    }.get(type(instr), type(instr).__name__.lower())


def _guess_physical(graph: FlowGraph) -> bool:
    for block in graph.blocks.values():
        for instr in block.instrs:
            for reg in instr.defs() + instr.uses():
                if isinstance(reg, isa.PhysReg):
                    return True
                if isinstance(reg, isa.Temp):
                    return False
    return False


def run_virtual(
    graph: FlowGraph,
    inputs: dict[str, int] | None = None,
    memory: MemorySystem | None = None,
    iterations: int = 1,
    threads: int = 1,
) -> RunResult:
    """Convenience: run a virtual-register flowgraph a fixed number of
    iterations per thread with constant inputs."""

    def provider(tid: int, iteration: int) -> dict | None:
        if iteration >= iterations:
            return None
        return dict(inputs or {})

    machine = Machine(
        graph,
        memory=memory,
        threads=threads,
        physical=False,
        input_provider=provider,
    )
    return machine.run()
