"""Cycle-approximate IXP1200 micro-engine simulator.

Executes a flowgraph in one of two register modes:

- **virtual** — operands are :class:`repro.ixp.isa.Temp`; the register
  file is unbounded.  Used to validate compiler output *before* register
  allocation (and as the semantic reference the allocated code must
  match).
- **physical** — operands are :class:`repro.ixp.isa.PhysReg`; the
  simulator enforces every datapath restriction of Figure 1: ALU operand
  bank legality, aggregate adjacency in transfer banks, no moves within a
  transfer bank, hash-unit same-register-number, and bank sizes.

Hardware-supported multithreading is modeled the way the chip works: a
thread runs until it issues a memory reference (or ``ctx_arb``), then the
micro-engine swaps to the next ready thread with zero overhead while the
reference completes.  Each memory space services one transfer at a time,
so contention lengthens the critical path exactly where the paper says it
does.

Cycle costs: ALU/move/branch-not-taken 1 cycle, taken branches 2 (the
IXP's deferred branch slot, unfilled), ``immed`` 1 (2 for constants wider
than 16 bits), csr 3, hash 1 + unit latency, memory = issue 1 +
space latency.

Execution paths
---------------

There are two execution paths with identical semantics:

- the **interpreter** (``Machine(..., decode=False)``) walks the
  flowgraph instruction objects and re-derives everything — operand
  kinds, bank legality, ALU dispatch — per dynamic instruction;
- the **decoded** path (the default) first compiles the flowgraph into
  one specialized step closure per instruction via :func:`decoded_graph`.
  All static work — operand register keys, bound ALU/compare functions,
  immediate widths, cycle costs, and every static legality check (ALU
  operand/dst bank rules, transfer-bank move restriction, aggregate
  adjacency, hash SameReg) — happens exactly once at decode time; the
  per-instruction hot loop is a closure call over a plain dict register
  file.  Decoded graphs are cached by flowgraph identity so repeated
  runs (throughput benchmarks, fuzz campaigns, shrinker iterations)
  reuse the decode.

Statically-illegal instructions are decoded into *raiser* closures that
replay the interpreter's dynamic reads and then raise the identical
exception — decode itself never raises for an unreachable illegal
instruction, exactly like the interpreter.
"""

from __future__ import annotations

import heapq
import operator
import sys
import weakref
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulatorError
from repro.ixp import isa
from repro.ixp.banks import (
    ALU_INPUT_BANKS,
    ALU_OUTPUT_BANKS,
    BANK_SIZES,
    Bank,
    READ_BANK,
    WRITE_BANK,
)
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.memory import MemorySystem
from repro.trace import ensure

WORD_MASK = 0xFFFFFFFF
HASH_LATENCY = 10
CLOCK_MHZ = 233  # IXP1200 in the paper (Section 11)
#: Cycles a thread sleeps before retrying a full-ring enqueue / empty-ring
#: dequeue (same cadence as the lock-bit spin).
RING_RETRY = 4

#: The three simulator speed tiers, slowest to fastest.  All three are
#: observationally identical (cycles, stalls, memory images, errors);
#: ``tests/test_decode_parity.py`` pins the equivalence.
SIM_MODES = ("interp", "decoded", "compiled")


def _alu_eval(op: str, a: int, b: int | None) -> int:
    if op == "add":
        return (a + (b or 0)) & WORD_MASK
    if op == "sub":
        return (a - (b or 0)) & WORD_MASK
    if op == "and":
        return a & (b or 0)
    if op == "or":
        return a | (b or 0)
    if op == "xor":
        return a ^ (b or 0)
    if op == "shl":
        return (a << ((b or 0) & 31)) & WORD_MASK
    if op == "shr":
        return (a & WORD_MASK) >> ((b or 0) & 31)
    if op == "not":
        return ~a & WORD_MASK
    if op == "neg":
        return -a & WORD_MASK
    raise SimulatorError(f"unknown ALU op '{op}'")


#: Concrete functions for each ALU op, bound into closures at decode time
#: (must agree with :func:`_alu_eval` bit for bit).
_ALU_FNS: dict[str, Callable[[int, int | None], int]] = {
    "add": lambda a, b: (a + (b or 0)) & WORD_MASK,
    "sub": lambda a, b: (a - (b or 0)) & WORD_MASK,
    "and": lambda a, b: a & (b or 0),
    "or": lambda a, b: a | (b or 0),
    "xor": lambda a, b: a ^ (b or 0),
    "shl": lambda a, b: (a << ((b or 0) & 31)) & WORD_MASK,
    "shr": lambda a, b: (a & WORD_MASK) >> ((b or 0) & 31),
    "not": lambda a, b: ~a & WORD_MASK,
    "neg": lambda a, b: -a & WORD_MASK,
}


def _cmp_eval(op: str, a: int, b: int) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    raise SimulatorError(f"unknown comparison '{op}'")


_CMP_FNS: dict[str, Callable[[int, int], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def hash48(value: int) -> int:
    """The hash unit: a deterministic 32-bit mix (stand-in for the
    IXP1200's 48-bit polynomial hash)."""
    value &= WORD_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & WORD_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & WORD_MASK
    value ^= value >> 16
    return value


@dataclass
class RegisterFile:
    """Per-thread registers, keyed by Temp name or (bank, index).

    The decoded path bypasses :meth:`read`/:meth:`write` entirely: step
    closures address :attr:`values` directly with keys interned at decode
    time, so the per-access ``isinstance``/``key()`` work happens once
    per *static* instruction instead of once per *dynamic* one.
    """

    physical: bool
    values: dict[object, int] = field(default_factory=dict)

    def key(self, reg: isa.Reg) -> object:
        if isinstance(reg, isa.Temp):
            if self.physical:
                raise SimulatorError(
                    f"virtual register {reg} in physical-mode execution"
                )
            return reg.name
        if isinstance(reg, isa.PhysReg):
            if not self.physical:
                raise SimulatorError(
                    f"physical register {reg} in virtual-mode execution"
                )
            if reg.bank not in BANK_SIZES:
                raise SimulatorError(f"register in non-register bank {reg}")
            if not 0 <= reg.index < BANK_SIZES[reg.bank]:
                raise SimulatorError(f"register index out of range: {reg}")
            return (reg.bank, reg.index)
        raise SimulatorError(f"bad register operand {reg!r}")

    def read(self, reg: isa.Reg | isa.Imm) -> int:
        if isinstance(reg, isa.Imm):
            return reg.value
        key = self.key(reg)
        if key not in self.values:
            raise SimulatorError(f"read of undefined register {reg}")
        return self.values[key]

    def write(self, reg: isa.Reg, value: int) -> None:
        self.values[self.key(reg)] = value & WORD_MASK


def _bank_of(reg: isa.Reg) -> Bank | None:
    return reg.bank if isinstance(reg, isa.PhysReg) else None


def _check_alu_operands(instr: isa.Instr, ops: list[isa.Reg]) -> None:
    """Enforce Figure 1: inputs from L/LD/A/B; at most one operand from
    each of A, B, and L∪LD.  ``instr`` is only formatted on failure."""
    banks = [b for b in (_bank_of(op) for op in ops) if b is not None]
    for bank in banks:
        if bank not in ALU_INPUT_BANKS:
            raise SimulatorError(
                f"{instr}: operand bank {bank} cannot feed the ALU"
            )
    if sum(1 for b in banks if b is Bank.A) > 1:
        raise SimulatorError(f"{instr}: two operands from bank A")
    if sum(1 for b in banks if b is Bank.B) > 1:
        raise SimulatorError(f"{instr}: two operands from bank B")
    if sum(1 for b in banks if b in (Bank.L, Bank.LD)) > 1:
        raise SimulatorError(
            f"{instr}: two operands from transfer banks"
        )


def _check_alu_dst(instr: isa.Instr, dst: isa.Reg) -> None:
    bank = _bank_of(dst)
    if bank is not None and bank not in ALU_OUTPUT_BANKS:
        raise SimulatorError(
            f"{instr}: ALU result cannot go to bank {bank}"
        )


def _check_aggregate(instr: isa.MemOp) -> None:
    expected = (
        READ_BANK[instr.space]
        if instr.direction == "read"
        else WRITE_BANK[instr.space]
    )
    indices = []
    for reg in instr.regs:
        bank = _bank_of(reg)
        if bank is None:
            return  # virtual mode: nothing to check
        if bank is not expected:
            raise SimulatorError(
                f"{instr}: aggregate register {reg} not in bank {expected}"
            )
        indices.append(reg.index)
    if indices != list(range(indices[0], indices[0] + len(indices))):
        raise SimulatorError(f"{instr}: aggregate registers not adjacent")
    addr_bank = _bank_of(instr.addr)
    if addr_bank is not None and addr_bank not in (Bank.A, Bank.B):
        raise SimulatorError(f"{instr}: address must come from A or B")


@dataclass(slots=True)
class ThreadStats:
    # slots: the counters are bumped once per simulated instruction /
    # memory stall on every tier's hot loop.
    instructions: int = 0
    iterations: int = 0
    mem_stall_cycles: int = 0


@dataclass
class RunResult:
    cycles: int
    thread_stats: list[ThreadStats]
    results: list[tuple[int, tuple[int, ...]]]  # (thread, halt values)

    @property
    def instructions(self) -> int:
        return sum(t.instructions for t in self.thread_stats)

    def throughput_mbps(self, payload_bytes: int, clock_mhz: int = CLOCK_MHZ) -> float:
        """Bits of payload processed per second at ``clock_mhz``."""
        if self.cycles == 0:
            return 0.0
        iterations = sum(t.iterations for t in self.thread_stats)
        seconds = self.cycles / (clock_mhz * 1e6)
        return iterations * payload_bytes * 8 / seconds / 1e6


# --------------------------------------------------------------------------
# Decode stage: flowgraph → specialized step closures
# --------------------------------------------------------------------------
#
# Each instruction decodes to a *step* closure with the uniform signature
#
#     step(thread, clock) -> (cost, blocked)
#
# where ``blocked`` is None (keep running), an absolute finish time (the
# thread sleeps until then), or the ``_YIELD`` sentinel (ctx_arb / halt:
# yield the engine at the current clock).  Control flow is threaded
# through ``thread.step``: every closure stores its successor (captured
# at decode time) before returning; branch targets go through one-element
# cells patched after all blocks decode, which handles CFG cycles.

#: sentinel "blocked" value: yield the engine at the current clock
_YIELD = object()


class _DecodedGraph:
    """One flowgraph compiled to closure-threaded steps."""

    __slots__ = ("entry", "first_steps", "instructions")

    def __init__(self, entry, first_steps, instructions):
        self.entry = entry  # first step of the entry block
        self.first_steps = first_steps  # block label → first step
        self.instructions = instructions  # static instruction count


def _intern_key(reg: isa.Reg, physical: bool) -> object:
    """The register-file dict key ``reg`` addresses; mirrors
    :meth:`RegisterFile.key` (including its error messages)."""
    if isinstance(reg, isa.Temp):
        if physical:
            raise SimulatorError(
                f"virtual register {reg} in physical-mode execution"
            )
        return sys.intern(reg.name)
    if isinstance(reg, isa.PhysReg):
        if not physical:
            raise SimulatorError(
                f"physical register {reg} in virtual-mode execution"
            )
        if reg.bank not in BANK_SIZES:
            raise SimulatorError(f"register in non-register bank {reg}")
        if not 0 <= reg.index < BANK_SIZES[reg.bank]:
            raise SimulatorError(f"register index out of range: {reg}")
        return (reg.bank, reg.index)
    raise SimulatorError(f"bad register operand {reg!r}")


def _read_spec(op, physical: bool):
    """('imm', value, None) for immediates, else ('reg', key, undef-msg)."""
    if isinstance(op, isa.Imm):
        return ("imm", op.value, None)
    return ("reg", _intern_key(op, physical), f"read of undefined register {op}")


def _raiser(exc: BaseException, prior) -> Callable:
    """A step for a statically-illegal instruction.

    Replays the dynamic register reads the interpreter would perform
    *before* faulting (reads have no side effects, so replaying only
    their definedness checks is exact), then raises the decode-time
    exception with identical type and args.
    """
    exc_type, exc_args = type(exc), exc.args
    prior = tuple(prior)

    def step(thread, clock):
        rv = thread.rv
        for key, msg in prior:
            if key not in rv:
                raise SimulatorError(msg)
        raise exc_type(*exc_args)

    return step


def _decode_alu(instr: isa.Alu, physical: bool, nxt) -> Callable:
    try:
        _check_alu_operands(instr, instr.uses())
        _check_alu_dst(instr, instr.dst)
    except SimulatorError as exc:
        return _raiser(exc, ())
    prior: list = []
    try:
        a = _read_spec(instr.a, physical)
        if a[0] == "reg":
            prior.append((a[1], a[2]))
        b = None
        if instr.b is not None:
            b = _read_spec(instr.b, physical)
            if b[0] == "reg":
                prior.append((b[1], b[2]))
        fn = _ALU_FNS.get(instr.op)
        if fn is None:
            raise SimulatorError(f"unknown ALU op '{instr.op}'")
        dk = _intern_key(instr.dst, physical)
    except SimulatorError as exc:
        return _raiser(exc, prior)

    # Immediates participating in the bitwise ops can be masked at decode
    # time (masking distributes over &, |, ^ against a masked operand);
    # the other ops' functions mask their results, so their immediates
    # stay raw — exactly what the interpreter computes.
    bitwise = instr.op in ("and", "or", "xor")
    if b is None:
        if a[0] == "imm":
            const = fn(a[1], None) & WORD_MASK

            def step(thread, clock):
                thread.rv[dk] = const
                thread.step = nxt
                return 1, None

        else:
            ak, amsg = a[1], a[2]

            def step(thread, clock):
                rv = thread.rv
                try:
                    value = rv[ak]
                except KeyError:
                    raise SimulatorError(amsg) from None
                rv[dk] = fn(value, None)
                thread.step = nxt
                return 1, None

    elif a[0] == "imm" and b[0] == "imm":
        const = fn(a[1], b[1]) & WORD_MASK

        def step(thread, clock):
            thread.rv[dk] = const
            thread.step = nxt
            return 1, None

    elif b[0] == "imm":
        ak, amsg = a[1], a[2]
        bv = b[1] & WORD_MASK if bitwise else b[1]

        def step(thread, clock):
            rv = thread.rv
            try:
                value = rv[ak]
            except KeyError:
                raise SimulatorError(amsg) from None
            rv[dk] = fn(value, bv)
            thread.step = nxt
            return 1, None

    elif a[0] == "imm":
        av = a[1] & WORD_MASK if bitwise else a[1]
        bk, bmsg = b[1], b[2]

        def step(thread, clock):
            rv = thread.rv
            try:
                value = rv[bk]
            except KeyError:
                raise SimulatorError(bmsg) from None
            rv[dk] = fn(av, value)
            thread.step = nxt
            return 1, None

    else:
        ak, amsg = a[1], a[2]
        bk, bmsg = b[1], b[2]

        def step(thread, clock):
            rv = thread.rv
            try:
                value = fn(rv[ak], rv[bk])
            except KeyError:
                raise SimulatorError(
                    amsg if ak not in rv else bmsg
                ) from None
            rv[dk] = value
            thread.step = nxt
            return 1, None

    return step


def _decode_copy(instr, physical: bool, nxt, cost: int) -> Callable:
    """Shared tail of Move/Clone decoding: src → dst at ``cost`` cycles."""
    prior: list = []
    try:
        src = _read_spec(instr.src, physical)
        if src[0] == "reg":
            prior.append((src[1], src[2]))
        dk = _intern_key(instr.dst, physical)
    except SimulatorError as exc:
        return _raiser(exc, prior)
    if src[0] == "imm":
        const = src[1] & WORD_MASK

        def step(thread, clock):
            thread.rv[dk] = const
            thread.step = nxt
            return cost, None

    else:
        sk, smsg = src[1], src[2]

        def step(thread, clock):
            rv = thread.rv
            try:
                value = rv[sk]
            except KeyError:
                raise SimulatorError(smsg) from None
            rv[dk] = value
            thread.step = nxt
            return cost, None

    return step


def _decode_move(instr: isa.Move, physical: bool, nxt) -> Callable:
    try:
        _check_alu_operands(instr, [instr.src])
        _check_alu_dst(instr, instr.dst)
        src_bank = _bank_of(instr.src)
        dst_bank = _bank_of(instr.dst)
        if (
            src_bank is not None
            and src_bank == dst_bank
            and src_bank in (Bank.L, Bank.S, Bank.LD, Bank.SD)
            and instr.src != instr.dst
        ):
            raise SimulatorError(
                f"{instr}: no datapath within transfer bank {src_bank}"
            )
    except SimulatorError as exc:
        return _raiser(exc, ())
    return _decode_copy(instr, physical, nxt, 1)


def _decode_clone(instr: isa.Clone, physical: bool, nxt) -> Callable:
    if physical:
        return _raiser(
            SimulatorError("clone instruction survived register allocation"),
            (),
        )
    return _decode_copy(instr, physical, nxt, 0)


def _decode_immed(instr: isa.Immed, physical: bool, nxt) -> Callable:
    try:
        _check_alu_dst(instr, instr.dst)
        dk = _intern_key(instr.dst, physical)
    except SimulatorError as exc:
        return _raiser(exc, ())
    const = instr.value & WORD_MASK
    cost = 1 if 0 <= instr.value < (1 << 16) else 2

    def step(thread, clock):
        thread.rv[dk] = const
        thread.step = nxt
        return cost, None

    return step


def _interp_mem(instr: isa.MemOp, nxt) -> Callable:
    """Fallback for memory ops the interpreter faults on *midway* through
    its side effects (``space.issue`` runs before register-key errors):
    delegate to the interpreter for exact behaviour."""

    def step(thread, clock):
        cost, blocked = thread.machine._execute_mem(thread, instr, clock)
        thread.step = nxt
        return cost, blocked

    return step


def _decode_mem(instr: isa.MemOp, physical: bool, nxt) -> Callable:
    try:
        _check_aggregate(instr)
        if instr.space == "rfifo" and instr.direction == "write":
            raise SimulatorError("the receive FIFO is read-only")
        if instr.space == "tfifo" and instr.direction == "read":
            raise SimulatorError("the transmit FIFO is write-only")
    except (SimulatorError, KeyError) as exc:
        # KeyError: _check_aggregate indexes READ_BANK/WRITE_BANK before
        # the fifo-direction guards; replicate the exact exception.
        return _raiser(exc, ())
    try:
        addr = _read_spec(instr.addr, physical)
        reg_keys = []
        undef = {}
        for reg in instr.regs:
            key = _intern_key(reg, physical)
            reg_keys.append(key)
            undef[key] = f"read of undefined register {reg}"
    except SimulatorError:
        return _interp_mem(instr, nxt)
    reg_keys = tuple(reg_keys)
    n = len(reg_keys)
    space_name = instr.space
    if instr.direction == "read":
        if addr[0] == "imm":
            addr_const = addr[1]

            def step(thread, clock):
                space = thread.machine.memory[space_name]
                finish = space.issue(clock + 1, n)
                values = space.read(addr_const, n)
                rv = thread.rv
                for key, value in zip(reg_keys, values):
                    rv[key] = value
                thread.step = nxt
                return 1, finish

        else:
            ak, amsg = addr[1], addr[2]

            def step(thread, clock):
                space = thread.machine.memory[space_name]
                rv = thread.rv
                try:
                    addr_value = rv[ak]
                except KeyError:
                    raise SimulatorError(amsg) from None
                finish = space.issue(clock + 1, n)
                values = space.read(addr_value, n)
                for key, value in zip(reg_keys, values):
                    rv[key] = value
                thread.step = nxt
                return 1, finish

    else:
        if addr[0] == "imm":
            addr_const = addr[1]

            def step(thread, clock):
                space = thread.machine.memory[space_name]
                rv = thread.rv
                finish = space.issue(clock + 1, n)
                try:
                    values = [rv[key] for key in reg_keys]
                except KeyError as exc:
                    raise SimulatorError(undef[exc.args[0]]) from None
                space.write(addr_const, values)
                thread.step = nxt
                return 1, finish

        else:
            ak, amsg = addr[1], addr[2]

            def step(thread, clock):
                space = thread.machine.memory[space_name]
                rv = thread.rv
                try:
                    addr_value = rv[ak]
                except KeyError:
                    raise SimulatorError(amsg) from None
                finish = space.issue(clock + 1, n)
                try:
                    values = [rv[key] for key in reg_keys]
                except KeyError as exc:
                    raise SimulatorError(undef[exc.args[0]]) from None
                space.write(addr_value, values)
                thread.step = nxt
                return 1, finish

    return step


def _decode_ring(instr: isa.RingOp, physical: bool, nxt) -> Callable:
    ring_name = instr.ring
    if instr.kind == "enq":
        try:
            src = _read_spec(instr.reg, physical)
        except SimulatorError as exc:
            return _raiser(exc, ())
        if src[0] == "imm":
            const = src[1]

            def step(thread, clock):
                ring = thread.machine.memory.ring(ring_name)
                finish = ring.try_enqueue(clock + 1, const)
                if finish is None:
                    return 1, clock + RING_RETRY  # full: spin-retry
                thread.step = nxt
                return 1, finish

        else:
            sk, smsg = src[1], src[2]

            def step(thread, clock):
                ring = thread.machine.memory.ring(ring_name)
                try:
                    value = thread.rv[sk]
                except KeyError:
                    raise SimulatorError(smsg) from None
                finish = ring.try_enqueue(clock + 1, value)
                if finish is None:
                    return 1, clock + RING_RETRY
                thread.step = nxt
                return 1, finish

    else:
        try:
            dk = _intern_key(instr.reg, physical)
        except SimulatorError as exc:
            return _raiser(exc, ())

        def step(thread, clock):
            ring = thread.machine.memory.ring(ring_name)
            popped = ring.try_dequeue(clock + 1)
            if popped is None:
                return 1, clock + RING_RETRY  # empty: spin-retry
            value, finish = popped
            thread.rv[dk] = value
            thread.step = nxt
            return 1, finish

    return step


def _decode_hash(instr: isa.HashInstr, physical: bool, nxt) -> Callable:
    try:
        src_bank, dst_bank = _bank_of(instr.src), _bank_of(instr.dst)
        if src_bank is not None:
            if src_bank is not Bank.S or dst_bank is not Bank.L:
                raise SimulatorError(f"{instr}: hash reads S and writes L")
            if instr.src.index != instr.dst.index:
                raise SimulatorError(
                    f"{instr}: hash dst/src must share a register "
                    "number (SameReg)"
                )
    except SimulatorError as exc:
        return _raiser(exc, ())
    prior: list = []
    try:
        src = _read_spec(instr.src, physical)
        if src[0] == "reg":
            prior.append((src[1], src[2]))
        dk = _intern_key(instr.dst, physical)
    except SimulatorError as exc:
        return _raiser(exc, prior)
    cost = 1 + HASH_LATENCY
    if src[0] == "imm":
        const = hash48(src[1])

        def step(thread, clock):
            thread.rv[dk] = const
            thread.step = nxt
            return cost, None

    else:
        sk, smsg = src[1], src[2]

        def step(thread, clock):
            rv = thread.rv
            try:
                value = rv[sk]
            except KeyError:
                raise SimulatorError(smsg) from None
            rv[dk] = hash48(value)
            thread.step = nxt
            return cost, None

    return step


def _decode_csr_rd(instr: isa.CsrRd, physical: bool, nxt) -> Callable:
    try:
        dk = _intern_key(instr.dst, physical)
    except SimulatorError as exc:
        return _raiser(exc, ())
    csr = instr.csr

    def step(thread, clock):
        thread.rv[dk] = thread.machine.csrs.get(csr, 0) & WORD_MASK
        thread.step = nxt
        return 3, None

    return step


def _decode_csr_wr(instr: isa.CsrWr, physical: bool, nxt) -> Callable:
    try:
        src = _read_spec(instr.src, physical)
    except SimulatorError as exc:
        return _raiser(exc, ())
    csr = instr.csr
    if src[0] == "imm":
        const = src[1]

        def step(thread, clock):
            thread.machine.csrs[csr] = const
            thread.step = nxt
            return 3, None

    else:
        sk, smsg = src[1], src[2]

        def step(thread, clock):
            try:
                value = thread.rv[sk]
            except KeyError:
                raise SimulatorError(smsg) from None
            thread.machine.csrs[csr] = value
            thread.step = nxt
            return 3, None

    return step


def _decode_ctx_arb(instr: isa.CtxArb, physical: bool, nxt) -> Callable:
    def step(thread, clock):
        thread.step = nxt
        return 1, _YIELD

    return step


def _decode_lock(instr: isa.LockInstr, physical: bool, nxt) -> Callable:
    number = instr.number
    if instr.kind == "lock":

        def step(thread, clock):
            locks = thread.machine.locks
            holder = locks.get(number)
            if holder is None:
                locks[number] = thread.tid
                thread.step = nxt
                return 1, None
            if holder == thread.tid:
                raise SimulatorError(
                    f"thread {thread.tid} re-acquiring lock {number}"
                )
            # Spin: thread.step stays on this instruction for the retry.
            return 1, clock + 4

    else:

        def step(thread, clock):
            locks = thread.machine.locks
            holder = locks.get(number)
            if holder != thread.tid:
                raise SimulatorError(
                    f"thread {thread.tid} unlocking lock {number} held "
                    f"by {holder}"
                )
            del locks[number]
            thread.step = nxt
            return 1, None

    return step


def _decode_br(instr: isa.Br, cells) -> Callable:
    cell = cells[instr.target]

    def step(thread, clock):
        thread.step = cell[0]
        return 2, None

    return step


def _decode_br_cmp(instr: isa.BrCmp, physical: bool, cells) -> Callable:
    try:
        _check_alu_operands(instr, instr.uses())
    except SimulatorError as exc:
        return _raiser(exc, ())
    prior: list = []
    try:
        a = _read_spec(instr.a, physical)
        if a[0] == "reg":
            prior.append((a[1], a[2]))
        b = _read_spec(instr.b, physical)
        if b[0] == "reg":
            prior.append((b[1], b[2]))
        fn = _CMP_FNS.get(instr.cmp)
        if fn is None:
            raise SimulatorError(f"unknown comparison '{instr.cmp}'")
    except SimulatorError as exc:
        return _raiser(exc, prior)
    tcell = cells[instr.then_target]
    ecell = cells[instr.else_target]
    # Comparison operands stay raw (the interpreter compares the raw
    # immediate against the masked register value).
    if a[0] == "imm" and b[0] == "imm":
        target = tcell if fn(a[1], b[1]) else ecell

        def step(thread, clock):
            thread.step = target[0]
            return 2, None

    elif b[0] == "imm":
        ak, amsg = a[1], a[2]
        bv = b[1]

        def step(thread, clock):
            try:
                taken = fn(thread.rv[ak], bv)
            except KeyError:
                raise SimulatorError(amsg) from None
            thread.step = tcell[0] if taken else ecell[0]
            return 2, None

    elif a[0] == "imm":
        av = a[1]
        bk, bmsg = b[1], b[2]

        def step(thread, clock):
            try:
                taken = fn(av, thread.rv[bk])
            except KeyError:
                raise SimulatorError(bmsg) from None
            thread.step = tcell[0] if taken else ecell[0]
            return 2, None

    else:
        ak, amsg = a[1], a[2]
        bk, bmsg = b[1], b[2]

        def step(thread, clock):
            rv = thread.rv
            try:
                taken = fn(rv[ak], rv[bk])
            except KeyError:
                raise SimulatorError(
                    amsg if ak not in rv else bmsg
                ) from None
            thread.step = tcell[0] if taken else ecell[0]
            return 2, None

    return step


def _decode_halt(instr: isa.HaltInstr, physical: bool) -> Callable:
    specs: list = []
    prior: list = []
    try:
        for result in instr.results:
            spec = _read_spec(result, physical)
            if spec[0] == "reg":
                specs.append((True, spec[1], spec[2]))
                prior.append((spec[1], spec[2]))
            else:
                specs.append((False, spec[1], None))
    except SimulatorError as exc:
        return _raiser(exc, prior)
    specs = tuple(specs)

    def step(thread, clock):
        rv = thread.rv
        values = []
        for is_reg, payload, msg in specs:
            if is_reg:
                try:
                    values.append(rv[payload])
                except KeyError:
                    raise SimulatorError(msg) from None
            else:
                values.append(payload)
        values = tuple(values)
        thread.halt_values = values
        thread.machine.results.append((thread.tid, values))
        thread.stats.iterations += 1
        thread.iteration += 1
        thread.restart()
        return 1, _YIELD

    return step


def _decode_instr(instr: isa.Instr, physical: bool, nxt, cells) -> Callable:
    if isinstance(instr, isa.Alu):
        step = _decode_alu(instr, physical, nxt)
    elif isinstance(instr, isa.Move):
        step = _decode_move(instr, physical, nxt)
    elif isinstance(instr, isa.Clone):
        step = _decode_clone(instr, physical, nxt)
    elif isinstance(instr, isa.Immed):
        step = _decode_immed(instr, physical, nxt)
    elif isinstance(instr, isa.MemOp):
        step = _decode_mem(instr, physical, nxt)
    elif isinstance(instr, isa.RingOp):
        step = _decode_ring(instr, physical, nxt)
    elif isinstance(instr, isa.HashInstr):
        step = _decode_hash(instr, physical, nxt)
    elif isinstance(instr, isa.CsrRd):
        step = _decode_csr_rd(instr, physical, nxt)
    elif isinstance(instr, isa.CsrWr):
        step = _decode_csr_wr(instr, physical, nxt)
    elif isinstance(instr, isa.CtxArb):
        step = _decode_ctx_arb(instr, physical, nxt)
    elif isinstance(instr, isa.LockInstr):
        step = _decode_lock(instr, physical, nxt)
    elif isinstance(instr, isa.Br):
        step = _decode_br(instr, cells)
    elif isinstance(instr, isa.BrCmp):
        step = _decode_br_cmp(instr, physical, cells)
    elif isinstance(instr, isa.HaltInstr):
        step = _decode_halt(instr, physical)
    else:
        step = _raiser(
            SimulatorError(f"unhandled instruction {instr!r}"), ()
        )
    step.opcode = _opcode_of(instr)
    return step


def _decode_blocks(graph: FlowGraph, physical: bool) -> _DecodedGraph:
    # Branch targets resolve through one-element cells patched after all
    # blocks decode, so CFG cycles need no special ordering.
    cells: dict[str, list] = {label: [None] for label in graph.blocks}
    first_steps: dict[str, Callable] = {}
    count = 0
    for label, block in graph.blocks.items():
        step = None
        for instr in reversed(block.instrs):
            step = _decode_instr(instr, physical, step, cells)
            count += 1
        first_steps[label] = step
        cells[label][0] = step
    return _DecodedGraph(first_steps[graph.entry], first_steps, count)


#: (id(graph), physical) → decoded program.  Entries evict when the graph
#: is garbage collected (weakref.finalize), so id() reuse cannot alias.
#: Kept off the FlowGraph itself: closures don't pickle, and compilation
#: artifacts carrying the graph are cached with pickle.
_DECODED: dict[tuple[int, bool], _DecodedGraph] = {}


def decoded_graph(graph: FlowGraph, physical: bool, tracer=None) -> _DecodedGraph:
    """Decode ``graph`` into step closures, once per (graph, mode)."""
    key = (id(graph), bool(physical))
    cached = _DECODED.get(key)
    if cached is not None:
        return cached
    tracer = ensure(tracer)
    with tracer.span("simulate.decode", physical=int(bool(physical))) as sp:
        graph.validate()
        decoded = _decode_blocks(graph, bool(physical))
        if sp:
            sp.add(blocks=len(graph.blocks), instructions=decoded.instructions)
    _DECODED[key] = decoded
    weakref.finalize(graph, _DECODED.pop, key, None)
    return decoded


class _Thread:
    # Slotted: ``thread.<attr>`` reads/writes bracket every execution
    # slice on all three tiers (prologue, exits, the run loop).
    __slots__ = (
        "tid",
        "machine",
        "regs",
        "rv",
        "step",
        "cpc",
        "block",
        "index",
        "ready_at",
        "done",
        "stats",
        "iteration",
        "halt_values",
    )

    def __init__(self, tid: int, machine: "Machine"):
        self.tid = tid
        self.machine = machine
        self.regs = RegisterFile(machine.physical)
        self.rv = self.regs.values  # the decoded path's register dict
        decoded = machine.decoded
        self.step = decoded.entry if decoded is not None else None
        self.cpc = 0  # compiled tier: resume label (entry block head)
        self.block = machine.graph.entry
        self.index = 0
        self.ready_at = 0
        self.done = False
        self.stats = ThreadStats()
        self.iteration = 0
        #: halt values of this thread's most recent halt, until taken
        #: via :meth:`Machine.take_result` (external schedulers consume
        #: results per thread rather than indexing the shared list).
        self.halt_values: tuple[int, ...] | None = None

    def load(self, inputs: dict) -> None:
        """Reset the thread to the graph entry with a fresh register
        file holding ``inputs`` (register-file keys → values)."""
        machine = self.machine
        self.regs = RegisterFile(machine.physical)
        values = self.regs.values
        for name, value in inputs.items():
            values[name] = value & WORD_MASK
        self.rv = values
        self.cpc = 0
        self.block = machine.graph.entry
        self.index = 0
        decoded = machine.decoded
        if decoded is not None:
            self.step = decoded.entry

    def restart(self) -> bool:
        inputs = self.machine.input_provider(self.tid, self.iteration)
        if inputs is None:
            self.done = True
            return False
        self.load(inputs)
        return True


class Machine:
    """N hardware threads executing one flowgraph over a memory system."""

    def __init__(
        self,
        graph: FlowGraph,
        memory: MemorySystem | None = None,
        threads: int = 1,
        physical: bool | None = None,
        input_provider: Callable[[int, int], dict | None] | None = None,
        max_cycles: int = 50_000_000,
        tracer=None,
        decode: bool = True,
        mode: str | None = None,
    ):
        graph.validate()
        self.graph = graph
        self.tracer = ensure(tracer)
        #: opcode → [issue count, cycles]; only kept while tracing so the
        #: per-instruction cost of the histogram is one ``is None`` test.
        self._opcode_hist: dict[str, list[int]] | None = (
            {} if self.tracer.enabled else None
        )
        self.memory = memory or MemorySystem.create()
        if physical is None:
            physical = _guess_physical(graph)
        self.physical = physical
        # ``mode`` names the speed tier explicitly; the older ``decode``
        # flag keeps working as the interp/decoded switch.
        if mode is None:
            mode = "decoded" if decode else "interp"
        if mode not in SIM_MODES:
            raise ValueError(
                f"unknown simulator mode '{mode}' (expected one of "
                f"{', '.join(SIM_MODES)})"
            )
        self.mode = mode
        # The compiled tier keeps the decoded graph too: it is the
        # fallback when codegen declines an op, and threads resume
        # through either representation identically.
        self.decoded = (
            decoded_graph(graph, physical, self.tracer)
            if mode != "interp"
            else None
        )
        self.compiled = None
        if mode == "compiled":
            from repro.ixp.codegen import compiled_graph

            self.compiled = compiled_graph(
                graph,
                physical,
                instrumented=self.tracer.enabled,
                tracer=self.tracer,
            )
        self.input_provider = input_provider or (
            lambda tid, it: {} if it == 0 else None
        )
        self.threads = [_Thread(i, self) for i in range(threads)]
        self.max_cycles = max_cycles
        self.results: list[tuple[int, tuple[int, ...]]] = []
        self.csrs: dict[int, int] = {}
        #: lock bit → holding thread id (inter-thread mutual exclusion)
        self.locks: dict[int, int] = {}
        # Resolve the per-slice entry point once; service() and run()
        # share it.  The compiled tier binds this machine's state
        # (max_cycles, memory, locks, csrs, results, histogram) into
        # closure cells here, so slices pay no per-call attribute loads.
        # ``_loop`` is the compiled tier's whole-run scheduler (run()'s
        # loop with the dispatch inlined); other tiers use run()'s own.
        self._loop = None
        if self.compiled is not None:
            self._slice, self._loop = self.compiled.bind(self)
        elif self.decoded is not None:
            self._slice = self._run_thread_decoded
        else:
            self._slice = self._run_thread

    # -- execution ------------------------------------------------------------
    #
    # The stepping primitives (start / service / dispatch) are public so
    # an external scheduler — ``repro.ixp.net`` interleaving N engines on
    # one global clock — can drive this machine event by event; ``run``
    # is the single-engine closed loop built from the same primitives.

    def start(self) -> list[tuple[int, int]]:
        """Restart every thread from the input provider; returns
        ``(ready_at, tid)`` for the threads that received work."""
        return [(0, t.tid) for t in self.threads if t.restart()]

    def service(self, tid: int, now: int) -> int:
        """Run thread ``tid`` from cycle ``now`` until it blocks, yields
        or halts; returns the engine clock after the slice (the thread's
        wake-up time is in ``threads[tid].ready_at``)."""
        return self._slice(self.threads[tid], now)

    def dispatch(self, tid: int, inputs: dict, at: int = 0) -> None:
        """Hand thread ``tid`` one unit of work: reset it to the graph
        entry with ``inputs`` in a fresh register file, ready at ``at``.
        Used by external schedulers instead of the input provider."""
        thread = self.threads[tid]
        thread.load(inputs)
        thread.done = False
        thread.ready_at = at

    def take_result(self, tid: int) -> tuple[int, ...] | None:
        """Return and clear thread ``tid``'s most recent halt values.

        External schedulers consume results through this per-thread
        hand-off; the shared :attr:`results` list stays append-only for
        :meth:`run`'s :class:`RunResult`, but indexing it globally is
        wrong once several threads of one engine halt in interleaved
        scheduler slices.  Returns ``None`` if the thread has not
        halted since the last take.  If a thread halts more than once
        between takes (an input provider immediately refilling it), the
        latest halt wins — schedulers that care take after every slice.
        """
        thread = self.threads[tid]
        values = thread.halt_values
        thread.halt_values = None
        return values

    def run(self) -> RunResult:
        with self.tracer.span("simulate") as sp:
            clock = 0
            # (ready_at, tid, thread) — a thread has at most one entry,
            # so tid alone breaks ready_at ties (deterministically,
            # lowest tid first, exactly as the former (ready_at, tid,
            # seq) tuples ordered: seq never decided a comparison; the
            # thread rides along so the loop skips the list index).
            threads = self.threads
            ready: list[tuple[int, int, _Thread]] = []
            for ready_at, tid in self.start():
                heapq.heappush(ready, (ready_at, tid, threads[tid]))
            if self._loop is not None:
                # Compiled tier: the generated module carries this same
                # scheduler loop with the dispatch tree inlined.
                clock = self._loop(ready, clock)
            else:
                slice_fn = self._slice
                max_cycles = self.max_cycles
                heappop = heapq.heappop
                heappush = heapq.heappush
                while ready:
                    ready_at, tid, thread = heappop(ready)
                    if ready_at > clock:
                        clock = ready_at
                    clock = slice_fn(thread, clock)
                    if clock > max_cycles:
                        raise SimulatorError(
                            f"simulation exceeded {max_cycles} cycles"
                        )
                    if not thread.done:
                        heappush(ready, (thread.ready_at, tid, thread))
            result = RunResult(
                clock, [t.stats for t in self.threads], self.results
            )
            if sp:
                sp.add(
                    cycles=result.cycles,
                    instructions=result.instructions,
                    threads=len(self.threads),
                )
                for opcode, (count, cycles) in sorted(
                    (self._opcode_hist or {}).items()
                ):
                    sp.add(**{
                        f"count.{opcode}": count,
                        f"cycles.{opcode}": cycles,
                    })
        return result

    def _record_opcode(self, instr: isa.Instr, cost: int) -> None:
        entry = self._opcode_hist.setdefault(_opcode_of(instr), [0, 0])
        entry[0] += 1
        entry[1] += cost

    def _run_thread_decoded(self, thread: _Thread, clock: int) -> int:
        """Closure-threaded twin of :meth:`_run_thread` — the hot loop."""
        hist = self._opcode_hist
        max_cycles = self.max_cycles
        stats = thread.stats
        while True:
            step = thread.step
            stats.instructions += 1
            cost, blocked = step(thread, clock)
            if hist is not None:
                entry = hist.setdefault(step.opcode, [0, 0])
                entry[0] += 1
                entry[1] += cost
            clock += cost
            if clock > max_cycles:
                raise SimulatorError(
                    f"simulation exceeded {max_cycles} cycles"
                )
            if blocked is not None:
                if blocked is _YIELD:
                    thread.ready_at = clock
                    return clock
                thread.ready_at = blocked
                if blocked > clock:
                    stats.mem_stall_cycles += blocked - clock
                return clock

    def _run_thread(self, thread: _Thread, clock: int) -> int:
        """Run until the thread blocks, halts, or yields; returns clock."""
        while True:
            block = self.graph.blocks[thread.block]
            instr = block.instrs[thread.index]
            thread.stats.instructions += 1
            cost, blocked = self._execute(thread, instr, clock)
            if self._opcode_hist is not None:
                self._record_opcode(instr, cost)
            clock += cost
            # The outer scheduler only sees the clock when this thread
            # blocks or yields, so a pure-ALU infinite loop would spin
            # here forever; enforce the budget per instruction as well.
            if clock > self.max_cycles:
                raise SimulatorError(
                    f"simulation exceeded {self.max_cycles} cycles"
                )
            if blocked:
                thread.ready_at = blocked
                thread.stats.mem_stall_cycles += max(0, blocked - clock)
                return clock
            if thread.done or isinstance(instr, isa.CtxArb):
                thread.ready_at = clock
                return clock
            if isinstance(instr, isa.HaltInstr):
                thread.ready_at = clock
                return clock

    def _execute(
        self, thread: _Thread, instr: isa.Instr, clock: int
    ) -> tuple[int, int | None]:
        """Execute one instruction; returns (cycle cost, blocked-until)."""
        regs = thread.regs
        if isinstance(instr, isa.Alu):
            _check_alu_operands(instr, instr.uses())
            _check_alu_dst(instr, instr.dst)
            a = regs.read(instr.a)
            b = regs.read(instr.b) if instr.b is not None else None
            regs.write(instr.dst, _alu_eval(instr.op, a, b))
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.Move):
            _check_alu_operands(instr, [instr.src])
            _check_alu_dst(instr, instr.dst)
            src_bank = _bank_of(instr.src)
            dst_bank = _bank_of(instr.dst)
            if (
                src_bank is not None
                and src_bank == dst_bank
                and src_bank in (Bank.L, Bank.S, Bank.LD, Bank.SD)
                and instr.src != instr.dst
            ):
                raise SimulatorError(
                    f"{instr}: no datapath within transfer bank {src_bank}"
                )
            regs.write(instr.dst, regs.read(instr.src))
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.Clone):
            # Clones are pseudo-instructions; in virtual mode they copy,
            # in physical mode they should have been eliminated.
            if self.physical:
                raise SimulatorError(
                    "clone instruction survived register allocation"
                )
            regs.write(instr.dst, regs.read(instr.src))
            self._advance(thread)
            return 0, None
        if isinstance(instr, isa.Immed):
            _check_alu_dst(instr, instr.dst)
            regs.write(instr.dst, instr.value)
            self._advance(thread)
            return 1 if 0 <= instr.value < (1 << 16) else 2, None
        if isinstance(instr, isa.MemOp):
            return self._execute_mem(thread, instr, clock)
        if isinstance(instr, isa.RingOp):
            return self._execute_ring(thread, instr, clock)
        if isinstance(instr, isa.HashInstr):
            src_bank, dst_bank = _bank_of(instr.src), _bank_of(instr.dst)
            if src_bank is not None:
                if src_bank is not Bank.S or dst_bank is not Bank.L:
                    raise SimulatorError(
                        f"{instr}: hash reads S and writes L"
                    )
                assert isinstance(instr.src, isa.PhysReg)
                assert isinstance(instr.dst, isa.PhysReg)
                if instr.src.index != instr.dst.index:
                    raise SimulatorError(
                        f"{instr}: hash dst/src must share a register "
                        "number (SameReg)"
                    )
            regs.write(instr.dst, hash48(regs.read(instr.src)))
            self._advance(thread)
            return 1 + HASH_LATENCY, None
        if isinstance(instr, isa.CsrRd):
            regs.write(instr.dst, self.csrs.get(instr.csr, 0))
            self._advance(thread)
            return 3, None
        if isinstance(instr, isa.CsrWr):
            self.csrs[instr.csr] = regs.read(instr.src)
            self._advance(thread)
            return 3, None
        if isinstance(instr, isa.CtxArb):
            self._advance(thread)
            return 1, None
        if isinstance(instr, isa.LockInstr):
            return self._execute_lock(thread, instr, clock)
        if isinstance(instr, isa.Br):
            thread.block = instr.target
            thread.index = 0
            return 2, None
        if isinstance(instr, isa.BrCmp):
            _check_alu_operands(instr, instr.uses())
            a = regs.read(instr.a)
            b = regs.read(instr.b)
            taken = _cmp_eval(instr.cmp, a, b)
            thread.block = instr.then_target if taken else instr.else_target
            thread.index = 0
            return 2, None
        if isinstance(instr, isa.HaltInstr):
            values = tuple(regs.read(r) for r in instr.results)
            thread.halt_values = values
            self.results.append((thread.tid, values))
            thread.stats.iterations += 1
            thread.iteration += 1
            thread.restart()
            return 1, None
        raise SimulatorError(f"unhandled instruction {instr!r}")

    def _execute_lock(
        self, thread: _Thread, instr: isa.LockInstr, clock: int
    ) -> tuple[int, int | None]:
        holder = self.locks.get(instr.number)
        if instr.kind == "lock":
            if holder is None:
                self.locks[instr.number] = thread.tid
                self._advance(thread)
                return 1, None
            if holder == thread.tid:
                raise SimulatorError(
                    f"thread {thread.tid} re-acquiring lock {instr.number}"
                )
            # Spin: yield and retry this instruction later.
            return 1, clock + 4
        if holder != thread.tid:
            raise SimulatorError(
                f"thread {thread.tid} unlocking lock {instr.number} held "
                f"by {holder}"
            )
        del self.locks[instr.number]
        self._advance(thread)
        return 1, None

    def _execute_ring(
        self, thread: _Thread, instr: isa.RingOp, clock: int
    ) -> tuple[int, int | None]:
        regs = thread.regs
        # Static operand faults come before the ring lookup and before
        # any side effect — the decoded path raises them at decode time.
        key = None
        if not isinstance(instr.reg, isa.Imm):
            key = regs.key(instr.reg)
        elif instr.kind == "deq":
            regs.key(instr.reg)  # immediates cannot receive a dequeue
        ring = self.memory.ring(instr.ring)
        if instr.kind == "enq":
            if key is None:
                value = instr.reg.value
            elif key in regs.values:
                value = regs.values[key]
            else:
                raise SimulatorError(
                    f"read of undefined register {instr.reg}"
                )
            finish = ring.try_enqueue(clock + 1, value)
            if finish is None:
                # Full: spin — thread.index stays here for the retry.
                return 1, clock + RING_RETRY
            self._advance(thread)
            return 1, finish
        popped = ring.try_dequeue(clock + 1)
        if popped is None:
            return 1, clock + RING_RETRY
        value, finish = popped
        regs.values[key] = value
        self._advance(thread)
        return 1, finish

    def _execute_mem(
        self, thread: _Thread, instr: isa.MemOp, clock: int
    ) -> tuple[int, int | None]:
        _check_aggregate(instr)
        if instr.space == "rfifo" and instr.direction == "write":
            raise SimulatorError("the receive FIFO is read-only")
        if instr.space == "tfifo" and instr.direction == "read":
            raise SimulatorError("the transmit FIFO is write-only")
        space = self.memory[instr.space]
        addr = thread.regs.read(instr.addr)
        finish = space.issue(clock + 1, len(instr.regs))
        if instr.direction == "read":
            values = space.read(addr, len(instr.regs))
            for reg, value in zip(instr.regs, values):
                thread.regs.write(reg, value)
        else:
            space.write(addr, [thread.regs.read(r) for r in instr.regs])
        self._advance(thread)
        # Issue costs 1 cycle; the thread then sleeps until the data is
        # back while other threads run.
        return 1, finish

    def _advance(self, thread: _Thread) -> None:
        thread.index += 1


def _opcode_of(instr: isa.Instr) -> str:
    """Histogram key for the tracer's per-opcode cycle counters."""
    if isinstance(instr, isa.Alu):
        return f"alu.{instr.op}"
    if isinstance(instr, isa.BrCmp):
        return f"br.{instr.cmp}"
    if isinstance(instr, isa.MemOp):
        return f"{instr.space}.{instr.direction}"
    if isinstance(instr, isa.LockInstr):
        return f"lock.{instr.kind}"
    if isinstance(instr, isa.RingOp):
        return f"ring.{instr.kind}"
    return {
        isa.Move: "move",
        isa.Clone: "clone",
        isa.Immed: "immed",
        isa.HashInstr: "hash",
        isa.CsrRd: "csr_rd",
        isa.CsrWr: "csr_wr",
        isa.CtxArb: "ctx_arb",
        isa.Br: "br",
        isa.HaltInstr: "halt",
    }.get(type(instr), type(instr).__name__.lower())


def _guess_physical(graph: FlowGraph) -> bool:
    for block in graph.blocks.values():
        for instr in block.instrs:
            for reg in instr.defs() + instr.uses():
                if isinstance(reg, isa.PhysReg):
                    return True
                if isinstance(reg, isa.Temp):
                    return False
    return False


def run_virtual(
    graph: FlowGraph,
    inputs: dict[str, int] | None = None,
    memory: MemorySystem | None = None,
    iterations: int = 1,
    threads: int = 1,
    decode: bool = True,
    mode: str | None = None,
) -> RunResult:
    """Convenience: run a virtual-register flowgraph a fixed number of
    iterations per thread with constant inputs."""

    def provider(tid: int, iteration: int) -> dict | None:
        if iteration >= iterations:
            return None
        return dict(inputs or {})

    machine = Machine(
        graph,
        memory=memory,
        threads=threads,
        physical=False,
        input_provider=provider,
        decode=decode,
        mode=mode,
    )
    return machine.run()
