"""Abstract syntax for Nova.

The surface language follows the paper (Section 3): a strict, lexically
scoped, statically typed expression language with records, tuples,
functions (recursion only in tail position), lexical exceptions
(``try``/``handle``/``raise``), layouts with ``pack``/``unpack``, and
explicit memory operations (``sram``/``sdram``/``scratch``).

Assignment (``x := e``) and ``while`` loops are provided as conveniences;
the CPS conversion eliminates assignments, establishing the SSA property
the paper's ILP formulation relies on (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceSpan
from repro.nova.layouts import LayoutExpr


# --------------------------------------------------------------------------
# Patterns (binding forms in let / parameters)
# --------------------------------------------------------------------------


@dataclass
class Pattern:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class VarPat(Pattern):
    """Bind a single name, optionally with a type ascription."""

    name: str
    ty: "TypeExpr | None" = None


@dataclass
class TuplePat(Pattern):
    """Destructure a tuple: ``(a, b, c)``."""

    elems: list[Pattern]


@dataclass
class RecordPat(Pattern):
    """Destructure a record: ``[x = p1, y = p2]``.

    A field given without ``= pattern`` binds a variable of the same name
    (punning), e.g. ``[x, y]`` is ``[x = x, y = y]``.
    """

    fields: list[tuple[str, Pattern]]


@dataclass
class WildPat(Pattern):
    """Ignore the value: ``_``."""


# --------------------------------------------------------------------------
# Type expressions (surface syntax for types)
# --------------------------------------------------------------------------


@dataclass
class TypeExpr:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class WordTE(TypeExpr):
    pass


@dataclass
class BoolTE(TypeExpr):
    pass


@dataclass
class UnitTE(TypeExpr):
    pass


@dataclass
class WordArrayTE(TypeExpr):
    """``word[n]`` — a tuple of n words (packed data)."""

    length: int


@dataclass
class TupleTE(TypeExpr):
    elems: list[TypeExpr]


@dataclass
class RecordTE(TypeExpr):
    fields: list[tuple[str, TypeExpr]]


@dataclass
class PackedTE(TypeExpr):
    """``packed(l)`` for a layout expression l."""

    layout: LayoutExpr


@dataclass
class UnpackedTE(TypeExpr):
    """``unpacked(l)`` for a layout expression l."""

    layout: LayoutExpr


@dataclass
class ExnTE(TypeExpr):
    """``exn(t)`` — an exception carrying an argument of type t."""

    arg: TypeExpr


@dataclass
class ArrowTE(TypeExpr):
    """``t1 -> t2`` — functions passed as arguments."""

    param: TypeExpr
    result: TypeExpr


# --------------------------------------------------------------------------
# Expressions and statements
# --------------------------------------------------------------------------


@dataclass
class Expr:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class UnitLit(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class TupleExpr(Expr):
    elems: list[Expr]


@dataclass
class RecordExpr(Expr):
    fields: list[tuple[str, Expr]]


@dataclass
class FieldAccess(Expr):
    """``e.f`` — record field projection (also tuple projection ``e.0``)."""

    base: Expr
    field_name: str


@dataclass
class UnOp(Expr):
    """Unary operators: ``-`` (negate), ``~`` (complement), ``!`` (not)."""

    op: str
    operand: Expr


@dataclass
class BinOp(Expr):
    """Binary operators over words and bools.

    Word ops: ``+ - * / % & | ^ << >>``; comparisons ``== != < <= > >=``;
    bool ops ``&& ||`` (short-circuiting).
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class IfExpr(Expr):
    cond: Expr
    then_branch: Expr
    else_branch: "Expr | None"


@dataclass
class WhileExpr(Expr):
    """``while (cond) { body }`` — value is unit."""

    cond: Expr
    body: Expr


@dataclass
class Call(Expr):
    """Function call ``f(e1, ..)`` or ``f[x=e1, ..]`` (record argument)."""

    fn: str
    arg: Expr  # TupleExpr or RecordExpr (or single-expr TupleExpr)


@dataclass
class Block(Expr):
    """``{ stmt; ...; expr }`` — value is the final expression (or unit)."""

    stmts: list["Stmt"]
    result: Expr | None


@dataclass
class LetStmt:
    pat: Pattern
    init: Expr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class AssignStmt:
    """``x := e`` — rebind a mutable local (eliminated by SSA)."""

    name: str
    value: Expr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class ExprStmt:
    expr: Expr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class FunStmt:
    """A nested function declaration (paper Section 3.1).

    Free variables in the body refer to the enclosing scope.  Nested
    functions may not be recursive (they are inlined at each call during
    CPS conversion) — top-level functions cover tail recursion.
    """

    decl: "FunDecl"
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


Stmt = LetStmt | AssignStmt | ExprStmt | FunStmt


@dataclass
class MemRead(Expr):
    """``sram(addr, n)`` / ``sdram(addr, n)`` / ``scratch(addr, n)``.

    Reads *n* consecutive words starting at ``addr`` into an aggregate of
    transfer registers; the value is a tuple ``word[n]``.  When the read
    appears as the right-hand side of a tuple-pattern ``let``, *n* may be
    omitted and is inferred from the pattern arity.
    """

    space: str  # 'sram' | 'sdram' | 'scratch'
    addr: Expr
    count: int | None


@dataclass
class MemWrite(Expr):
    """``sram(addr) <- e`` — write an aggregate to memory; value is unit."""

    space: str
    addr: Expr
    value: Expr


@dataclass
class HashOp(Expr):
    """``hash(e)`` — the IXP hash unit; dst/src share a register number."""

    operand: Expr


@dataclass
class CsrOp(Expr):
    """``csr(n)`` / ``csr(n) <- e`` — access a control/status register."""

    number: int
    value: Expr | None  # None for a read


@dataclass
class LockOp(Expr):
    """``lock(n)`` / ``unlock(n)`` — mutual exclusion on lock bit n.

    ``lock`` spins (the thread yields to the scheduler while the lock
    is held elsewhere); ``unlock`` releases.  Value is unit.
    """

    kind: str  # 'lock' | 'unlock'
    number: int


@dataclass
class CtxSwap(Expr):
    """``ctx_swap()`` — voluntary thread yield (concurrency control)."""


@dataclass
class PackExpr(Expr):
    """``pack[l](e)`` — assemble packed words from an unpacked record."""

    layout: LayoutExpr
    arg: Expr


@dataclass
class UnpackExpr(Expr):
    """``unpack[l](e)`` — spread packed words into an unpacked record."""

    layout: LayoutExpr
    arg: Expr


@dataclass
class RaiseExpr(Expr):
    """``raise X(e)`` / ``raise X [f=..]`` / ``raise X()``."""

    exn: str
    arg: Expr


@dataclass
class Handler:
    """One ``handle X pat { body }`` clause of a try block."""

    exn: str
    pat: Pattern
    body: Expr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class TryExpr(Expr):
    """``try { body } handle X1 .. handle X2 ..``.

    The handler names X1.. are in scope (as exception values) inside the
    body, and can be passed to functions (Section 3.4).
    """

    body: Expr
    handlers: list[Handler]


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class LayoutDecl:
    name: str
    layout: LayoutExpr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class FunDecl:
    """``fun f (params) : ret { body }`` or ``fun f [fields] { body }``."""

    name: str
    param: Pattern  # TuplePat or RecordPat
    ret: TypeExpr | None
    body: Expr
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class Program:
    """A whole Nova compilation unit.

    ``main`` is the distinguished entry function (named ``main``); the
    program consists of layout declarations and function declarations.
    """

    layouts: list[LayoutDecl]
    funs: list[FunDecl]
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)

    def fun(self, name: str) -> FunDecl:
        for f in self.funs:
            if f.name == name:
                return f
        raise KeyError(name)
