"""Semantic types for Nova.

The paper stratifies Nova's static semantics into *types* and *layouts*
(Section 1.2).  This module is the type layer.  Its grammar is small:

- ``word`` — one 32-bit machine word (one register),
- ``bool`` — compiled to control flow, never materialized,
- tuples and records — compile-time aggregates that the CPS converter
  flattens into individual word variables,
- ``exn(t)`` — a lexically scoped exception carrying a ``t``,
- ``t1 -> t2`` — functions passed as arguments (always fully inlined).

``packed(l)`` *is* ``word[n]`` (a word tuple) and ``unpacked(l)`` *is* a
record type, so both normalize away at type-construction time; type
equality is purely structural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nova import layouts as lay


@dataclass(frozen=True)
class Type:
    """Base class of semantic types."""

    def flat_width(self) -> int:
        """Number of word-sized leaves after record/tuple flattening.

        Bools count as one leaf (they occupy a register only when a
        data representation is forced); units count as zero.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Word(Type):
    def flat_width(self) -> int:
        return 1

    def __str__(self) -> str:
        return "word"


@dataclass(frozen=True)
class Bool(Type):
    def flat_width(self) -> int:
        return 1

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class Unit(Type):
    def flat_width(self) -> int:
        return 0

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class Tuple(Type):
    elems: tuple[Type, ...]

    def flat_width(self) -> int:
        return sum(t.flat_width() for t in self.elems)

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.elems) + ")"


@dataclass(frozen=True)
class Record(Type):
    fields: tuple[tuple[str, Type], ...]

    def flat_width(self) -> int:
        return sum(t.flat_width() for _, t in self.fields)

    def field(self, name: str) -> Type | None:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"[{inner}]"


@dataclass(frozen=True)
class Exn(Type):
    arg: Type

    def flat_width(self) -> int:
        return 0  # exceptions compile to continuations, not data

    def __str__(self) -> str:
        return f"exn({self.arg})"


@dataclass(frozen=True)
class Arrow(Type):
    param: Type
    result: Type

    def flat_width(self) -> int:
        return 0  # functions compile to continuations/inlining, not data

    def __str__(self) -> str:
        return f"({self.param} -> {self.result})"


WORD = Word()
BOOL = Bool()
UNIT = Unit()


def word_tuple(n: int) -> Type:
    """``word[n]`` — the type of n packed words."""
    if n == 0:
        return UNIT
    if n == 1:
        return WORD
    return Tuple((WORD,) * n)


def packed_type(layout: lay.Layout) -> Type:
    """``packed(l)`` is a synonym for ``word[packed_words(l)]``."""
    return word_tuple(lay.packed_words(layout))


def unpacked_type(layout: lay.Layout) -> Type:
    """``unpacked(l)``: the record type spreading out every bitfield.

    Overlays contribute a record with one field per alternative (unpack
    produces all alternatives, paper Section 3.2).  Gaps and unnamed
    splice results contribute nothing addressable.
    """
    if isinstance(layout, lay.BitField):
        return WORD
    if isinstance(layout, lay.Gap):
        return UNIT
    if isinstance(layout, lay.Seq):
        fields = []
        for name, sub in layout.fields:
            if not name:
                continue
            sub_ty = unpacked_type(sub)
            if sub_ty != UNIT:
                fields.append((name, sub_ty))
        return Record(tuple(fields))
    if isinstance(layout, lay.Overlay):
        return Record(
            tuple((name, unpacked_type(sub)) for name, sub in layout.alts)
        )
    raise TypeError(f"unhandled layout {type(layout).__name__}")


def flatten_paths(ty: Type, prefix: tuple[str, ...] = ()) -> list[tuple[tuple[str, ...], Type]]:
    """Enumerate the word/bool leaves of a type with their access paths.

    Tuple components use their decimal index as the path element, which
    matches the surface syntax ``e.0``.
    """
    if isinstance(ty, (Word, Bool)):
        return [(prefix, ty)]
    if isinstance(ty, Unit):
        return []
    if isinstance(ty, Tuple):
        out = []
        for i, elem in enumerate(ty.elems):
            out.extend(flatten_paths(elem, prefix + (str(i),)))
        return out
    if isinstance(ty, Record):
        out = []
        for name, sub in ty.fields:
            out.extend(flatten_paths(sub, prefix + (name,)))
        return out
    if isinstance(ty, (Exn, Arrow)):
        return []
    raise TypeError(f"unhandled type {type(ty).__name__}")
