"""Lexer for the Nova language.

Nova's token set is small: identifiers, integer literals (decimal, hex and
binary), a fixed set of keywords, and punctuation/operators including the
layout-concatenation operator ``##`` and the memory-write arrow ``<-``.

Comments are C-style: ``// ...`` to end of line and ``/* ... */`` (which
may span lines but does not nest).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError, SourcePos, SourceSpan


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "layout",
        "overlay",
        "fun",
        "let",
        "if",
        "else",
        "while",
        "try",
        "handle",
        "raise",
        "pack",
        "unpack",
        "true",
        "false",
        "word",
        "bool",
        "unit",
        "exn",
        "packed",
        "unpacked",
        "sram",
        "sdram",
        "scratch",
        "rfifo",
        "tfifo",
        "hash",
        "csr",
        "ctx_swap",
        "lock",
        "unlock",
        "return",
    }
)

# Multi-character operators must be listed before their prefixes so that
# maximal-munch scanning picks the longest match.
PUNCTUATION = (
    "<<=",
    ">>=",
    "<-",
    "##",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    ":=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    ".",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source span."""

    kind: TokenKind
    text: str
    span: SourceSpan
    value: int | None = None  # only for INT tokens

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class _Scanner:
    """Stateful cursor over source text tracking line/column."""

    def __init__(self, text: str, filename: str):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.text):
            return "\0"
        return self.text[index]

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.at_end():
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def here(self) -> SourcePos:
        return SourcePos(self.line, self.col)

    def span_from(self, start: SourcePos) -> SourceSpan:
        return SourceSpan(start, self.here(), self.filename)


def _skip_trivia(scanner: _Scanner) -> None:
    """Skip whitespace and comments; raise on unterminated block comment."""
    while not scanner.at_end():
        ch = scanner.peek()
        if ch in " \t\r\n":
            scanner.advance()
        elif ch == "/" and scanner.peek(1) == "/":
            while not scanner.at_end() and scanner.peek() != "\n":
                scanner.advance()
        elif ch == "/" and scanner.peek(1) == "*":
            start = scanner.here()
            scanner.advance(2)
            while not (scanner.peek() == "*" and scanner.peek(1) == "/"):
                if scanner.at_end():
                    raise LexError(
                        "unterminated block comment",
                        scanner.span_from(start),
                    )
                scanner.advance()
            scanner.advance(2)
        else:
            return


def _scan_number(scanner: _Scanner) -> Token:
    start = scanner.here()
    text_start = scanner.pos
    if scanner.peek() == "0" and scanner.peek(1) in "xX":
        scanner.advance(2)
        if not (scanner.peek().isdigit() or scanner.peek().lower() in "abcdef"):
            raise LexError("malformed hex literal", scanner.span_from(start))
        while scanner.peek().isdigit() or scanner.peek().lower() in "abcdef":
            scanner.advance()
        text = scanner.text[text_start : scanner.pos]
        return Token(TokenKind.INT, text, scanner.span_from(start), int(text, 16))
    if scanner.peek() == "0" and scanner.peek(1) in "bB":
        scanner.advance(2)
        if scanner.peek() not in "01":
            raise LexError("malformed binary literal", scanner.span_from(start))
        while scanner.peek() in "01":
            scanner.advance()
        text = scanner.text[text_start : scanner.pos]
        return Token(TokenKind.INT, text, scanner.span_from(start), int(text, 2))
    while scanner.peek().isdigit():
        scanner.advance()
    if _is_ident_start(scanner.peek()):
        raise LexError(
            f"identifier may not start with a digit: {scanner.peek()!r}",
            scanner.span_from(start),
        )
    text = scanner.text[text_start : scanner.pos]
    return Token(TokenKind.INT, text, scanner.span_from(start), int(text, 10))


def tokenize(text: str, filename: str = "<nova>") -> list[Token]:
    """Convert Nova source text into a token list ending with an EOF token.

    Raises :class:`repro.errors.LexError` on malformed input.
    """
    scanner = _Scanner(text, filename)
    tokens: list[Token] = []
    while True:
        _skip_trivia(scanner)
        if scanner.at_end():
            break
        start = scanner.here()
        ch = scanner.peek()
        if ch.isdigit():
            tokens.append(_scan_number(scanner))
            continue
        if _is_ident_start(ch):
            text_start = scanner.pos
            while _is_ident_char(scanner.peek()):
                scanner.advance()
            word = scanner.text[text_start : scanner.pos]
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, scanner.span_from(start)))
            continue
        for punct in PUNCTUATION:
            if scanner.text.startswith(punct, scanner.pos):
                scanner.advance(len(punct))
                tokens.append(Token(TokenKind.PUNCT, punct, scanner.span_from(start)))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", scanner.span_from(start))
    eof_span = SourceSpan(scanner.here(), scanner.here(), filename)
    tokens.append(Token(TokenKind.EOF, "", eof_span))
    return tokens
