"""Type checker and elaborator for Nova.

Checks the two-layer static semantics (types + layouts, paper Sections
1.2 and 3) and annotates the AST in place for the CPS converter:

- every expression node gets a ``ty`` attribute (a :mod:`repro.nova.types`
  value),
- ``MemRead`` nodes get their inferred aggregate ``count``,
- ``PackExpr``/``UnpackExpr`` nodes get their ``resolved_layout``,
- the tail-call restriction is enforced: recursive calls (any call cycle)
  are only legal in tail position, which is what lets Nova run without a
  stack (Section 3.1).

The checker is deliberately monomorphic — Nova has no polymorphism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeError_
from repro.nova import ast
from repro.nova import layouts as lay
from repro.nova import types as ty

# Aggregate size limits (paper Section 5.2): SRAM/scratch reads and writes
# move 1..8 words; SDRAM transfers always move an even number (2,4,6,8).
MAX_AGGREGATE = 8
_SDRAM_COUNTS = (2, 4, 6, 8)


@dataclass(frozen=True)
class _BottomTy(ty.Type):
    """The type of expressions that never return (``raise``)."""

    def flat_width(self) -> int:
        return 0

    def __str__(self) -> str:
        return "bottom"


BOTTOM = _BottomTy()


def compatible(a: ty.Type, b: ty.Type) -> bool:
    return a == b or a == BOTTOM or b == BOTTOM


def join(a: ty.Type, b: ty.Type) -> ty.Type | None:
    """Least upper type of two branch types, or None if incompatible."""
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == b:
        return a
    return None


@dataclass
class VarInfo:
    type: ty.Type
    mutable: bool


@dataclass
class FunSig:
    param: ty.Type
    ret: ty.Type | None
    decl: ast.FunDecl


@dataclass
class CallSite:
    caller: str
    callee: str
    tail: bool
    expr: ast.Call


@dataclass
class TypedProgram:
    """The result of type checking: the annotated AST plus environments."""

    program: ast.Program
    layout_env: dict[str, lay.Layout]
    sigs: dict[str, FunSig]
    calls: list[CallSite] = field(default_factory=list)

    def return_type(self, name: str) -> ty.Type:
        ret = self.sigs[name].ret
        assert ret is not None
        return ret


_WORD_BINOPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"})
_CMP_BINOPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_BOOL_BINOPS = frozenset({"&&", "||"})


class _Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.layout_env: dict[str, lay.Layout] = {}
        self.sigs: dict[str, FunSig] = {}
        self.calls: list[CallSite] = []
        self.scopes: list[dict[str, VarInfo]] = []
        self.current_fun = ""
        # Names bound outside each lexically enclosing try body; used to
        # reject assignments that would make handler entry states
        # path-dependent (handlers are continuations taking only the
        # exception arguments).
        self.try_outer: list[set[str]] = []

    # -- scope handling ----------------------------------------------------

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, info: VarInfo, span) -> None:
        self.scopes[-1][name] = info

    def lookup(self, name: str) -> VarInfo | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- layout / type elaboration ------------------------------------------

    def resolve_layout(self, expr: lay.LayoutExpr) -> lay.Layout:
        return lay.resolve(expr, self.layout_env)

    def elab_type(self, te: ast.TypeExpr) -> ty.Type:
        if isinstance(te, ast.WordTE):
            return ty.WORD
        if isinstance(te, ast.BoolTE):
            return ty.BOOL
        if isinstance(te, ast.UnitTE):
            return ty.UNIT
        if isinstance(te, ast.WordArrayTE):
            return ty.word_tuple(te.length)
        if isinstance(te, ast.TupleTE):
            return ty.Tuple(tuple(self.elab_type(e) for e in te.elems))
        if isinstance(te, ast.RecordTE):
            return ty.Record(
                tuple((name, self.elab_type(sub)) for name, sub in te.fields)
            )
        if isinstance(te, ast.PackedTE):
            return ty.packed_type(self.resolve_layout(te.layout))
        if isinstance(te, ast.UnpackedTE):
            return ty.unpacked_type(self.resolve_layout(te.layout))
        if isinstance(te, ast.ExnTE):
            return ty.Exn(self.elab_type(te.arg))
        if isinstance(te, ast.ArrowTE):
            return ty.Arrow(self.elab_type(te.param), self.elab_type(te.result))
        raise TypeError_(f"unhandled type expression {type(te).__name__}", te.span)

    # -- patterns -------------------------------------------------------------

    def pattern_type(self, pat: ast.Pattern) -> ty.Type:
        """Type of a parameter pattern; unannotated variables are words."""
        if isinstance(pat, ast.VarPat):
            return self.elab_type(pat.ty) if pat.ty is not None else ty.WORD
        if isinstance(pat, ast.WildPat):
            return ty.WORD
        if isinstance(pat, ast.TuplePat):
            if not pat.elems:
                return ty.UNIT
            if len(pat.elems) == 1:
                return self.pattern_type(pat.elems[0])
            return ty.Tuple(tuple(self.pattern_type(p) for p in pat.elems))
        if isinstance(pat, ast.RecordPat):
            return ty.Record(
                tuple((name, self.pattern_type(p)) for name, p in pat.fields)
            )
        raise TypeError_(f"unhandled pattern {type(pat).__name__}", pat.span)

    def bind_pattern(self, pat: ast.Pattern, t: ty.Type, mutable: bool) -> None:
        """Destructure type ``t`` against ``pat``, binding variables."""
        if isinstance(pat, ast.WildPat):
            return
        if isinstance(pat, ast.VarPat):
            if pat.ty is not None:
                declared = self.elab_type(pat.ty)
                if not compatible(declared, t):
                    raise TypeError_(
                        f"pattern ascription {declared} does not match {t}",
                        pat.span,
                    )
                t = declared
            self.bind(pat.name, VarInfo(t, mutable), pat.span)
            return
        if isinstance(pat, ast.TuplePat):
            if isinstance(t, ty.Unit) and not pat.elems:
                return
            if len(pat.elems) == 1 and not (
                isinstance(t, ty.Tuple) and len(t.elems) == 1
            ):
                # Singleton tuple patterns unwrap (parameter lists).
                self.bind_pattern(pat.elems[0], t, mutable)
                return
            if not isinstance(t, ty.Tuple) or len(t.elems) != len(pat.elems):
                raise TypeError_(f"tuple pattern does not match {t}", pat.span)
            for sub, sub_t in zip(pat.elems, t.elems):
                self.bind_pattern(sub, sub_t, mutable)
            return
        if isinstance(pat, ast.RecordPat):
            if not isinstance(t, ty.Record):
                raise TypeError_(f"record pattern does not match {t}", pat.span)
            for name, sub in pat.fields:
                sub_t = t.field(name)
                if sub_t is None:
                    raise TypeError_(f"no field '{name}' in {t}", pat.span)
                self.bind_pattern(sub, sub_t, mutable)
            return
        raise TypeError_(f"unhandled pattern {type(pat).__name__}", pat.span)

    # -- expressions ------------------------------------------------------------

    def check(self, expr: ast.Expr, tail: bool = False) -> ty.Type:
        t = self._check(expr, tail)
        expr.ty = t  # annotate in place for the CPS converter
        return t

    def _check(self, expr: ast.Expr, tail: bool) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            if not 0 <= expr.value < 2**32:
                if -(2**31) <= expr.value < 0:
                    expr.value &= 0xFFFFFFFF
                else:
                    raise TypeError_(
                        f"integer literal {expr.value} out of 32-bit range",
                        expr.span,
                    )
            return ty.WORD
        if isinstance(expr, ast.BoolLit):
            return ty.BOOL
        if isinstance(expr, ast.UnitLit):
            return ty.UNIT
        if isinstance(expr, ast.VarRef):
            info = self.lookup(expr.name)
            if info is None:
                raise TypeError_(f"unbound variable '{expr.name}'", expr.span)
            return info.type
        if isinstance(expr, ast.TupleExpr):
            return ty.Tuple(tuple(self.check(e) for e in expr.elems))
        if isinstance(expr, ast.RecordExpr):
            seen: set[str] = set()
            fields = []
            for name, e in expr.fields:
                if name in seen:
                    raise TypeError_(f"duplicate record field '{name}'", expr.span)
                seen.add(name)
                fields.append((name, self.check(e)))
            return ty.Record(tuple(fields))
        if isinstance(expr, ast.FieldAccess):
            base = self.check(expr.base)
            if isinstance(base, ty.Record):
                sub = base.field(expr.field_name)
                if sub is None:
                    raise TypeError_(
                        f"no field '{expr.field_name}' in {base}", expr.span
                    )
                return sub
            if isinstance(base, ty.Tuple):
                try:
                    index = int(expr.field_name)
                except ValueError:
                    raise TypeError_(
                        f"tuple projection needs an index, got "
                        f"'.{expr.field_name}'",
                        expr.span,
                    ) from None
                if not 0 <= index < len(base.elems):
                    raise TypeError_(
                        f"tuple index {index} out of range for {base}", expr.span
                    )
                return base.elems[index]
            raise TypeError_(f"cannot project from {base}", expr.span)
        if isinstance(expr, ast.UnOp):
            operand = self.check(expr.operand)
            if expr.op == "!":
                if operand != ty.BOOL:
                    raise TypeError_(f"'!' needs bool, got {operand}", expr.span)
                return ty.BOOL
            if operand != ty.WORD:
                raise TypeError_(
                    f"'{expr.op}' needs word, got {operand}", expr.span
                )
            return ty.WORD
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr)
        if isinstance(expr, ast.IfExpr):
            cond = self.check(expr.cond)
            if cond != ty.BOOL:
                raise TypeError_(f"if condition must be bool, got {cond}", expr.span)
            then_t = self.check(expr.then_branch, tail)
            if expr.else_branch is None:
                if then_t not in (ty.UNIT, BOTTOM):
                    raise TypeError_(
                        f"if without else must have unit body, got {then_t}",
                        expr.span,
                    )
                return ty.UNIT
            else_t = self.check(expr.else_branch, tail)
            joined = join(then_t, else_t)
            if joined is None:
                raise TypeError_(
                    f"if branches disagree: {then_t} vs {else_t}", expr.span
                )
            return joined
        if isinstance(expr, ast.WhileExpr):
            cond = self.check(expr.cond)
            if cond != ty.BOOL:
                raise TypeError_(
                    f"while condition must be bool, got {cond}", expr.span
                )
            self.check(expr.body)
            return ty.UNIT
        if isinstance(expr, ast.Block):
            return self._check_block(expr, tail)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, tail)
        if isinstance(expr, ast.MemRead):
            return self._check_mem_read(expr)
        if isinstance(expr, ast.MemWrite):
            return self._check_mem_write(expr)
        if isinstance(expr, ast.HashOp):
            operand = self.check(expr.operand)
            if operand != ty.WORD:
                raise TypeError_(f"hash needs word, got {operand}", expr.span)
            return ty.WORD
        if isinstance(expr, ast.CsrOp):
            if expr.value is None:
                return ty.WORD
            value = self.check(expr.value)
            if value != ty.WORD:
                raise TypeError_(f"csr write needs word, got {value}", expr.span)
            return ty.UNIT
        if isinstance(expr, ast.CtxSwap):
            return ty.UNIT
        if isinstance(expr, ast.LockOp):
            if not 0 <= expr.number < 16:
                raise TypeError_(
                    f"lock number must be 0..15, got {expr.number}", expr.span
                )
            return ty.UNIT
        if isinstance(expr, ast.UnpackExpr):
            return self._check_unpack(expr)
        if isinstance(expr, ast.PackExpr):
            return self._check_pack(expr)
        if isinstance(expr, ast.RaiseExpr):
            return self._check_raise(expr)
        if isinstance(expr, ast.TryExpr):
            return self._check_try(expr, tail)
        raise TypeError_(f"unhandled expression {type(expr).__name__}", expr.span)

    def _check_binop(self, expr: ast.BinOp) -> ty.Type:
        left = self.check(expr.left)
        right = self.check(expr.right)
        if expr.op in _BOOL_BINOPS:
            if left != ty.BOOL or right != ty.BOOL:
                raise TypeError_(
                    f"'{expr.op}' needs bools, got {left} and {right}", expr.span
                )
            return ty.BOOL
        if expr.op in _CMP_BINOPS:
            if expr.op in ("==", "!=") and left == ty.BOOL and right == ty.BOOL:
                return ty.BOOL
            if left != ty.WORD or right != ty.WORD:
                raise TypeError_(
                    f"'{expr.op}' needs words, got {left} and {right}", expr.span
                )
            return ty.BOOL
        if expr.op in _WORD_BINOPS:
            if left != ty.WORD or right != ty.WORD:
                raise TypeError_(
                    f"'{expr.op}' needs words, got {left} and {right}", expr.span
                )
            return ty.WORD
        raise TypeError_(f"unknown operator '{expr.op}'", expr.span)

    def _check_block(self, block: ast.Block, tail: bool) -> ty.Type:
        self.push()
        try:
            diverged = False
            for stmt in block.stmts:
                if isinstance(stmt, ast.FunStmt):
                    self._check_nested_fun(stmt)
                elif isinstance(stmt, ast.LetStmt):
                    self._check_let(stmt)
                elif isinstance(stmt, ast.AssignStmt):
                    info = self.lookup(stmt.name)
                    if info is None:
                        raise TypeError_(
                            f"assignment to unbound '{stmt.name}'", stmt.span
                        )
                    if not info.mutable:
                        raise TypeError_(
                            f"'{stmt.name}' is not assignable", stmt.span
                        )
                    for outer in self.try_outer:
                        if stmt.name in outer:
                            raise TypeError_(
                                f"assignment to '{stmt.name}' inside a try "
                                "body, but it is declared outside: "
                                "handlers would see a path-dependent "
                                "value",
                                stmt.span,
                            )
                    value = self.check(stmt.value)
                    if not compatible(value, info.type):
                        raise TypeError_(
                            f"assignment type {value} does not match "
                            f"{info.type}",
                            stmt.span,
                        )
                else:
                    t = self.check(stmt.expr)
                    if t == BOTTOM:
                        diverged = True
            if block.result is None:
                return BOTTOM if diverged else ty.UNIT
            return self.check(block.result, tail)
        finally:
            self.pop()

    def _check_nested_fun(self, stmt: ast.FunStmt) -> None:
        """Nested functions close over the enclosing scope and are bound
        as arrow-typed values.  The name is bound *after* the body is
        checked, so nested functions cannot recurse (they are inlined at
        every call site during conversion)."""
        decl = stmt.decl
        param_t = self.pattern_type(decl.param)
        self.push()
        try:
            self.bind_pattern(decl.param, param_t, mutable=True)
            body_t = self.check(decl.body, tail=False)
        finally:
            self.pop()
        if decl.ret is not None:
            declared = self.elab_type(decl.ret)
            if not compatible(body_t, declared):
                raise TypeError_(
                    f"nested function '{decl.name}' declares {declared} "
                    f"but its body has type {body_t}",
                    decl.span,
                )
            body_t = declared
        if body_t == BOTTOM:
            body_t = ty.UNIT
        self.bind(
            decl.name, VarInfo(ty.Arrow(param_t, body_t), False), decl.span
        )

    def _check_let(self, stmt: ast.LetStmt) -> None:
        init = stmt.init
        # Infer memory-read aggregate counts from the pattern arity.
        if isinstance(init, ast.MemRead) and init.count is None:
            if isinstance(stmt.pat, ast.TuplePat):
                init.count = len(stmt.pat.elems)
            else:
                init.count = 1
        t = self.check(init)
        self.bind_pattern(stmt.pat, t, mutable=True)

    def _check_call(self, expr: ast.Call, tail: bool) -> ty.Type:
        arg_t = self.check(expr.arg)
        info = self.lookup(expr.fn)
        if info is not None:
            if not isinstance(info.type, ty.Arrow):
                raise TypeError_(
                    f"'{expr.fn}' is not callable (type {info.type})", expr.span
                )
            if not compatible(arg_t, info.type.param):
                raise TypeError_(
                    f"argument {arg_t} does not match parameter "
                    f"{info.type.param}",
                    expr.span,
                )
            return info.type.result
        sig = self.sigs.get(expr.fn)
        if sig is None:
            raise TypeError_(f"unknown function '{expr.fn}'", expr.span)
        if not compatible(arg_t, sig.param):
            raise TypeError_(
                f"argument {arg_t} does not match parameter {sig.param} "
                f"of '{expr.fn}'",
                expr.span,
            )
        self.calls.append(CallSite(self.current_fun, expr.fn, tail, expr))
        if sig.ret is None:
            raise TypeError_(
                f"call to '{expr.fn}' before its return type is known; "
                "declare the return type",
                expr.span,
            )
        return sig.ret

    def _check_mem_read(self, expr: ast.MemRead) -> ty.Type:
        if expr.space == "tfifo":
            raise TypeError_(
                "the transmit FIFO is write-only", expr.span
            )
        addr = self.check(expr.addr)
        if addr != ty.WORD:
            raise TypeError_(f"address must be word, got {addr}", expr.span)
        count = expr.count
        if count is None:
            count = 1
            expr.count = 1
        self._check_aggregate_count(expr.space, count, expr.span)
        return ty.word_tuple(count)

    def _check_mem_write(self, expr: ast.MemWrite) -> ty.Type:
        if expr.space == "rfifo":
            raise TypeError_(
                "the receive FIFO is read-only", expr.span
            )
        addr = self.check(expr.addr)
        if addr != ty.WORD:
            raise TypeError_(f"address must be word, got {addr}", expr.span)
        value = self.check(expr.value)
        count = value.flat_width()
        if not all(
            leaf_t == ty.WORD
            for _, leaf_t in ty.flatten_paths(value)
        ):
            raise TypeError_(
                f"memory write needs words, got {value}", expr.span
            )
        self._check_aggregate_count(expr.space, count, expr.span)
        return ty.UNIT

    def _check_aggregate_count(self, space: str, count: int, span) -> None:
        if space == "sdram":
            if count not in _SDRAM_COUNTS:
                raise TypeError_(
                    f"sdram transfers move 2, 4, 6 or 8 words, got {count}",
                    span,
                )
        elif not 1 <= count <= MAX_AGGREGATE:
            raise TypeError_(
                f"{space} transfers move 1..{MAX_AGGREGATE} words, "
                f"got {count}",
                span,
            )

    def _check_unpack(self, expr: ast.UnpackExpr) -> ty.Type:
        layout = self.resolve_layout(expr.layout)
        expr.resolved_layout = layout
        arg = self.check(expr.arg)
        expected = ty.packed_type(layout)
        if not compatible(arg, expected):
            raise TypeError_(
                f"unpack expects {expected} (= packed data of "
                f"{lay.packed_words(layout)} words), got {arg}",
                expr.span,
            )
        return ty.unpacked_type(layout)

    def _check_pack(self, expr: ast.PackExpr) -> ty.Type:
        layout = self.resolve_layout(expr.layout)
        expr.resolved_layout = layout
        groups = lay.overlay_groups(layout)
        arg_t = self.check(expr.arg)
        if isinstance(expr.arg, ast.RecordExpr):
            chosen = self._pack_selection(layout, arg_t, groups, expr)
        else:
            if groups:
                raise TypeError_(
                    "pack of a layout with overlays requires a record "
                    "literal selecting one alternative per overlay",
                    expr.span,
                )
            expected = ty.unpacked_type(layout)
            if not compatible(arg_t, expected):
                raise TypeError_(
                    f"pack expects {expected}, got {arg_t}", expr.span
                )
            chosen = {}
        expr.chosen_alts = chosen
        return ty.packed_type(layout)

    def _pack_selection(
        self,
        layout: lay.Layout,
        arg_t: ty.Type,
        groups: list[tuple[tuple[str, ...], list[str]]],
        expr: ast.PackExpr,
    ) -> dict[tuple[str, ...], str]:
        """Check a pack record literal and record which overlay
        alternatives it selects (paper Section 3.2: packing takes input
        corresponding to precisely one alternative of each overlay)."""

        def paths_of(t: ty.Type, prefix: tuple[str, ...]) -> set[tuple[str, ...]]:
            return {prefix + p for p, _ in ty.flatten_paths(t)}

        provided = paths_of(arg_t, ())
        chosen: dict[tuple[str, ...], str] = {}
        for prefix, alt_names in groups:
            present = [
                name
                for name in alt_names
                if any(
                    p[: len(prefix) + 1] == prefix + (name,) for p in provided
                )
            ]
            if len(present) != 1:
                raise TypeError_(
                    f"pack: overlay at '{'.'.join(prefix) or '<root>'}' "
                    f"needs exactly one alternative, got "
                    f"{present or 'none'}",
                    expr.span,
                )
            chosen[prefix] = present[0]
        # Every selected leaf must be provided as a word.
        required: set[tuple[str, ...]] = set()
        for leaf in lay.leaf_fields(layout):
            skip = False
            for prefix, alt in chosen.items():
                if (
                    leaf.path[: len(prefix)] == prefix
                    and len(leaf.path) > len(prefix)
                    and leaf.path[len(prefix)] != alt
                ):
                    skip = True
                    break
            if not skip:
                required.add(leaf.path)
        missing = required - provided
        if missing:
            pretty = ", ".join(".".join(p) for p in sorted(missing))
            raise TypeError_(f"pack: missing fields {pretty}", expr.span)
        extra = provided - required
        if extra:
            pretty = ", ".join(".".join(p) for p in sorted(extra))
            raise TypeError_(f"pack: unknown fields {pretty}", expr.span)
        return chosen

    def _check_raise(self, expr: ast.RaiseExpr) -> ty.Type:
        info = self.lookup(expr.exn)
        if info is None:
            raise TypeError_(f"unbound exception '{expr.exn}'", expr.span)
        if not isinstance(info.type, ty.Exn):
            raise TypeError_(
                f"'{expr.exn}' is not an exception (type {info.type})",
                expr.span,
            )
        arg = self.check(expr.arg)
        if not compatible(arg, info.type.arg):
            raise TypeError_(
                f"raise argument {arg} does not match {info.type.arg}",
                expr.span,
            )
        return BOTTOM

    def _check_try(self, expr: ast.TryExpr, tail: bool) -> ty.Type:
        # Handler parameter types define the exception types; the names
        # are in scope inside the try body.
        self.push()
        try:
            handler_types = []
            seen: set[str] = set()
            for handler in expr.handlers:
                if handler.exn in seen:
                    raise TypeError_(
                        f"duplicate handler '{handler.exn}'", handler.span
                    )
                seen.add(handler.exn)
                arg_t = self.pattern_type(handler.pat)
                handler_types.append(arg_t)
                self.bind(handler.exn, VarInfo(ty.Exn(arg_t), False), handler.span)
            outer_names = {name for scope in self.scopes for name in scope}
            self.try_outer.append(outer_names)
            try:
                body_t = self.check(expr.body, tail)
            finally:
                self.try_outer.pop()
            result = body_t
            for handler, arg_t in zip(expr.handlers, handler_types):
                self.push()
                try:
                    self.bind_pattern(handler.pat, arg_t, mutable=True)
                    h_t = self.check(handler.body, tail)
                finally:
                    self.pop()
                joined = join(result, h_t)
                if joined is None:
                    raise TypeError_(
                        f"handler '{handler.exn}' returns {h_t}, but try "
                        f"block has type {result}",
                        handler.span,
                    )
                result = joined
            return result
        finally:
            self.pop()

    # -- declarations ---------------------------------------------------------

    def run(self) -> TypedProgram:
        for decl in self.program.layouts:
            if decl.name in self.layout_env:
                raise TypeError_(f"duplicate layout '{decl.name}'", decl.span)
            self.layout_env[decl.name] = self.resolve_layout(decl.layout)
        for fun in self.program.funs:
            if fun.name in self.sigs:
                raise TypeError_(f"duplicate function '{fun.name}'", fun.span)
            param_t = self.pattern_type(fun.param)
            ret_t = self.elab_type(fun.ret) if fun.ret is not None else None
            self.sigs[fun.name] = FunSig(param_t, ret_t, fun)
        for fun in self.program.funs:
            self.current_fun = fun.name
            self.push()
            try:
                self.bind_pattern(fun.param, self.sigs[fun.name].param, True)
                body_t = self.check(fun.body, tail=True)
            finally:
                self.pop()
            sig = self.sigs[fun.name]
            if sig.ret is None:
                sig.ret = ty.UNIT if body_t == BOTTOM else body_t
            elif not compatible(body_t, sig.ret):
                raise TypeError_(
                    f"function '{fun.name}' declares {sig.ret} but its "
                    f"body has type {body_t}",
                    fun.span,
                )
        self._check_tail_restriction()
        return TypedProgram(self.program, self.layout_env, self.sigs, self.calls)

    def _check_tail_restriction(self) -> None:
        """Recursive calls must be tail calls (paper Section 3.1).

        We compute strongly connected components of the call graph; any
        non-tail call between two functions in the same component would
        require a stack, which Nova forbids.
        """
        adjacency: dict[str, set[str]] = {name: set() for name in self.sigs}
        for call in self.calls:
            adjacency[call.caller].add(call.callee)
        component = _tarjan_components(adjacency)
        for call in self.calls:
            if component[call.caller] == component[call.callee] and not call.tail:
                raise TypeError_(
                    f"recursive call from '{call.caller}' to "
                    f"'{call.callee}' is not in tail position; Nova has "
                    "no stack",
                    call.expr.span,
                )


def _tarjan_components(adjacency: dict[str, set[str]]) -> dict[str, int]:
    """Map each node to an SCC id (iterative Tarjan)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = [0]
    comp_id = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adjacency[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id[0]
                    if member == node:
                        break
                comp_id[0] += 1

    for node in adjacency:
        if node not in index:
            strongconnect(node)
    return component


def typecheck_program(program: ast.Program) -> TypedProgram:
    """Type check a parsed Nova program, annotating the AST in place."""
    return _Checker(program).run()
