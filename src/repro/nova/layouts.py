"""Nova layouts: bit-level descriptions of packed data (paper Section 3.2).

A *layout* statically describes the arrangement of bitfields within a byte
stream.  Layouts are built from:

- bitfields ``name : w`` (1..32 bits),
- sequential composition ``{ f1 : w1, f2 : sub, ... }``,
- anonymous gaps ``{n}`` (n unnamed bits),
- references to previously defined layouts,
- overlays ``overlay { alt1 : l1 | alt2 : l2 }`` giving alternative views
  of the same bit range (all alternatives must have equal width), and
- concatenation ``l1 ## l2``.

For every layout ``l`` Nova defines two types: ``packed(l)`` — a word
tuple holding the raw bits — and ``unpacked(l)`` — a record with one word
component per bitfield (paper Section 3.2).  This module computes widths,
resolves named references, and derives the *recipes* (shift/mask word
operations) implementing ``unpack[l]`` and ``pack[l]``.

Bit order is network order: bit 0 of a layout is the most significant bit
of word 0 of its packed representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LayoutError, SourceSpan

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF


# --------------------------------------------------------------------------
# Surface layout expressions (produced by the parser)
# --------------------------------------------------------------------------


@dataclass
class LayoutExpr:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class NameLE(LayoutExpr):
    """A reference to a named layout: ``ipv6_address``."""

    name: str


@dataclass
class GapLE(LayoutExpr):
    """``{n}`` — an n-bit anonymous gap."""

    bits: int


@dataclass
class SeqLE(LayoutExpr):
    """``{ f1 : item1, ... }`` — a sequential group of named items."""

    items: list[tuple[str, "LayoutExpr"]]


@dataclass
class BitsLE(LayoutExpr):
    """A raw bit count used as the item of a field: ``version : 4``."""

    bits: int


@dataclass
class OverlayLE(LayoutExpr):
    """``overlay { a : l1 | b : l2 }`` — alternatives over one bit range."""

    alts: list[tuple[str, "LayoutExpr"]]


@dataclass
class ConcatLE(LayoutExpr):
    """``l1 ## l2 ## ...`` — sequential concatenation."""

    parts: list["LayoutExpr"]


# --------------------------------------------------------------------------
# Resolved layouts
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Layout:
    """Base class of resolved (reference-free) layouts."""

    @property
    def width(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class BitField(Layout):
    """A leaf field of 1..32 bits."""

    bits: int

    @property
    def width(self) -> int:
        return self.bits


@dataclass(frozen=True)
class Gap(Layout):
    """Unnamed padding bits (no unpacked representation)."""

    bits: int

    @property
    def width(self) -> int:
        return self.bits


@dataclass(frozen=True)
class Seq(Layout):
    """Sequence of named sub-layouts (gaps have the empty name ``""``)."""

    fields: tuple[tuple[str, Layout], ...]

    @property
    def width(self) -> int:
        return sum(sub.width for _, sub in self.fields)


@dataclass(frozen=True)
class Overlay(Layout):
    """Alternative views of the same bit range; widths must agree."""

    alts: tuple[tuple[str, Layout], ...]

    @property
    def width(self) -> int:
        return self.alts[0][1].width


def resolve(expr: LayoutExpr, env: dict[str, Layout]) -> Layout:
    """Resolve a surface layout expression against named definitions.

    Raises :class:`LayoutError` for unknown names, zero/oversized
    bitfields, or overlays whose alternatives have unequal widths.
    """
    if isinstance(expr, NameLE):
        if expr.name not in env:
            raise LayoutError(f"unknown layout '{expr.name}'", expr.span)
        return env[expr.name]
    if isinstance(expr, GapLE):
        if expr.bits <= 0:
            raise LayoutError("gap width must be positive", expr.span)
        return Gap(expr.bits)
    if isinstance(expr, BitsLE):
        if not 1 <= expr.bits <= WORD_BITS:
            raise LayoutError(
                f"bitfield width must be 1..{WORD_BITS}, got {expr.bits}",
                expr.span,
            )
        return BitField(expr.bits)
    if isinstance(expr, SeqLE):
        fields: list[tuple[str, Layout]] = []
        seen: set[str] = set()
        for name, sub in expr.items:
            if name and name in seen:
                raise LayoutError(f"duplicate field '{name}'", expr.span)
            seen.add(name)
            fields.append((name, resolve(sub, env)))
        return Seq(tuple(fields))
    if isinstance(expr, OverlayLE):
        alts = [(name, resolve(sub, env)) for name, sub in expr.alts]
        if len(alts) < 2:
            raise LayoutError("overlay needs at least two alternatives", expr.span)
        widths = {sub.width for _, sub in alts}
        if len(widths) != 1:
            raise LayoutError(
                f"overlay alternatives have unequal widths {sorted(widths)}",
                expr.span,
            )
        names = [name for name, _ in alts]
        if len(set(names)) != len(names):
            raise LayoutError("duplicate overlay alternative name", expr.span)
        return Overlay(tuple(alts))
    if isinstance(expr, ConcatLE):
        fields = []
        for part in expr.parts:
            sub = resolve(part, env)
            # Concatenation splices sequences so that field names remain
            # addressable: {a:8} ## {b:8} has fields a and b, and gaps
            # stay anonymous.
            if isinstance(sub, Seq):
                fields.extend(sub.fields)
            elif isinstance(sub, Gap):
                fields.append(("", sub))
            else:
                fields.append(("", sub))
        return Seq(tuple(fields))
    raise LayoutError(f"unhandled layout expression {type(expr).__name__}", expr.span)


def packed_words(layout: Layout) -> int:
    """Number of 32-bit words in ``packed(l)`` (ceiling of width/32)."""
    return (layout.width + WORD_BITS - 1) // WORD_BITS


# --------------------------------------------------------------------------
# Leaf enumeration and pack/unpack recipes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LeafField:
    """One bitfield of a layout, with its absolute position.

    ``path`` addresses the field in the unpacked record, e.g.
    ``("src_address", "a1")``; overlay alternatives contribute their
    alternative name as a path component.  ``offset`` is the bit offset of
    the field's MSB from the start of the layout.
    """

    path: tuple[str, ...]
    offset: int
    bits: int


def leaf_fields(layout: Layout) -> list[LeafField]:
    """All bitfields of ``layout`` including every overlay alternative."""
    out: list[LeafField] = []

    def walk(node: Layout, path: tuple[str, ...], offset: int) -> None:
        if isinstance(node, BitField):
            out.append(LeafField(path, offset, node.bits))
        elif isinstance(node, Gap):
            pass
        elif isinstance(node, Seq):
            pos = offset
            for name, sub in node.fields:
                sub_path = path + (name,) if name else path
                walk(sub, sub_path, pos)
                pos += sub.width
        elif isinstance(node, Overlay):
            for name, sub in node.alts:
                walk(sub, path + (name,), offset)
        else:  # pragma: no cover - exhaustive over Layout subclasses
            raise LayoutError(f"unhandled layout node {type(node).__name__}")

    walk(layout, (), 0)
    return out


def overlay_groups(layout: Layout) -> list[tuple[tuple[str, ...], list[str]]]:
    """All overlays in ``layout`` as (path-prefix, alternative names).

    ``pack[l]`` requires its argument to supply exactly one alternative
    for each group returned here.
    """
    out: list[tuple[tuple[str, ...], list[str]]] = []

    def walk(node: Layout, path: tuple[str, ...]) -> None:
        if isinstance(node, Seq):
            for name, sub in node.fields:
                walk(sub, path + (name,) if name else path)
        elif isinstance(node, Overlay):
            out.append((path, [name for name, _ in node.alts]))
            for name, sub in node.alts:
                walk(sub, path + (name,))

    walk(layout, ())
    return out


@dataclass(frozen=True)
class WordPart:
    """One word-level contribution to a field extraction.

    Extracted value accumulates ``((word[index] >> right_shift) & mask)
    << left_shift`` over all parts.
    """

    index: int
    right_shift: int
    mask: int
    left_shift: int


@dataclass(frozen=True)
class ExtractRecipe:
    """How to compute one unpacked field from packed words."""

    leaf: LeafField
    parts: tuple[WordPart, ...]


def extract_recipe(leaf: LeafField) -> ExtractRecipe:
    """Shift/mask recipe reading ``leaf`` out of the packed word tuple.

    A field of <= 32 bits straddles at most one word boundary, so a recipe
    has one or two parts.
    """
    start, width = leaf.offset, leaf.bits
    end = start + width
    first_word = start // WORD_BITS
    last_word = (end - 1) // WORD_BITS
    parts: list[WordPart] = []
    if first_word == last_word:
        right = (first_word + 1) * WORD_BITS - end
        mask = (1 << width) - 1 if width < WORD_BITS else WORD_MASK
        parts.append(WordPart(first_word, right, mask, 0))
    else:
        high_bits = (first_word + 1) * WORD_BITS - start
        low_bits = width - high_bits
        parts.append(WordPart(first_word, 0, (1 << high_bits) - 1, low_bits))
        parts.append(
            WordPart(last_word, WORD_BITS - low_bits, (1 << low_bits) - 1, 0)
        )
    return ExtractRecipe(leaf, tuple(parts))


@dataclass(frozen=True)
class DepositPart:
    """One word-level contribution when packing a field.

    Word ``index`` receives ``((value >> value_shift) & mask) <<
    word_shift``.
    """

    index: int
    value_shift: int
    mask: int
    word_shift: int


@dataclass(frozen=True)
class DepositRecipe:
    """How one unpacked field contributes to the packed word tuple."""

    leaf: LeafField
    parts: tuple[DepositPart, ...]


def deposit_recipe(leaf: LeafField) -> DepositRecipe:
    """Shift/mask recipe writing ``leaf`` into the packed word tuple."""
    start, width = leaf.offset, leaf.bits
    end = start + width
    first_word = start // WORD_BITS
    last_word = (end - 1) // WORD_BITS
    parts: list[DepositPart] = []
    if first_word == last_word:
        word_shift = (first_word + 1) * WORD_BITS - end
        mask = (1 << width) - 1 if width < WORD_BITS else WORD_MASK
        parts.append(DepositPart(first_word, 0, mask, word_shift))
    else:
        high_bits = (first_word + 1) * WORD_BITS - start
        low_bits = width - high_bits
        parts.append(DepositPart(first_word, low_bits, (1 << high_bits) - 1, 0))
        parts.append(
            DepositPart(last_word, 0, (1 << low_bits) - 1, WORD_BITS - low_bits)
        )
    return DepositRecipe(leaf, tuple(parts))


# --------------------------------------------------------------------------
# Reference semantics (used by tests and the reference interpreter)
# --------------------------------------------------------------------------


def extract_value(words: list[int], recipe: ExtractRecipe) -> int:
    """Apply an extraction recipe to a packed word tuple."""
    value = 0
    for part in recipe.parts:
        value |= ((words[part.index] >> part.right_shift) & part.mask) << part.left_shift
    return value & WORD_MASK


def deposit_value(words: list[int], recipe: DepositRecipe, value: int) -> None:
    """Apply a deposit recipe, or-ing ``value`` into ``words`` in place."""
    for part in recipe.parts:
        words[part.index] |= ((value >> part.value_shift) & part.mask) << part.word_shift
        words[part.index] &= WORD_MASK


def unpack_reference(layout: Layout, words: list[int]) -> dict[tuple[str, ...], int]:
    """Reference implementation of ``unpack[l]``: all leaves extracted."""
    if len(words) < packed_words(layout):
        raise LayoutError(
            f"unpack needs {packed_words(layout)} words, got {len(words)}"
        )
    return {
        leaf.path: extract_value(words, extract_recipe(leaf))
        for leaf in leaf_fields(layout)
    }


def pack_reference(
    layout: Layout, values: dict[tuple[str, ...], int]
) -> list[int]:
    """Reference implementation of ``pack[l]``.

    ``values`` must supply every non-overlay leaf and exactly one
    alternative per overlay (identified by the alternative's leaves being
    present).
    """
    words = [0] * packed_words(layout)
    groups = overlay_groups(layout)
    chosen: dict[tuple[str, ...], str] = {}
    for prefix, alt_names in groups:
        present = [
            name
            for name in alt_names
            if any(path[: len(prefix) + 1] == prefix + (name,) for path in values)
        ]
        if len(present) != 1:
            raise LayoutError(
                f"pack: overlay at {'.'.join(prefix) or '<root>'} needs exactly "
                f"one alternative, got {present or 'none'}"
            )
        chosen[prefix] = present[0]

    def selected(path: tuple[str, ...]) -> bool:
        for prefix, alt in chosen.items():
            if path[: len(prefix)] == prefix and len(path) > len(prefix):
                # Inside this overlay's subtree: must be the chosen alt.
                if path[len(prefix)] != alt:
                    return False
        return True

    for leaf in leaf_fields(layout):
        if not selected(leaf.path):
            continue
        if leaf.path not in values:
            raise LayoutError(f"pack: missing field {'.'.join(leaf.path)}")
        deposit_value(words, deposit_recipe(leaf), values[leaf.path])
    return words
