"""The Nova language front end: lexer, parser, layouts, types, checker."""

from repro.nova.lexer import Token, TokenKind, tokenize
from repro.nova.parser import parse_program
from repro.nova.layouts import Layout, BitField, Overlay, Gap, Seq
from repro.nova.typecheck import typecheck_program

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "Layout",
    "BitField",
    "Overlay",
    "Gap",
    "Seq",
    "typecheck_program",
]
