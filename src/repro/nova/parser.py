"""Recursive-descent parser for Nova.

The grammar is a small C-flavoured expression language (paper Section 3).
Binary operator precedence, lowest first::

    ||  &&  |  ^  &  ==/!=  </<=/>/>=  <</>>  +/-  */ /%  unary  postfix

Memory operations parse as primaries: ``sram(addr)`` optionally followed
by ``<- value`` for a write, and ``sram(addr, n)`` for an n-word read
when the arity cannot be inferred from a ``let`` pattern.
"""

from __future__ import annotations

from repro.errors import ParseError, SourceSpan
from repro.nova import ast
from repro.nova.layouts import (
    BitsLE,
    ConcatLE,
    GapLE,
    LayoutExpr,
    NameLE,
    OverlayLE,
    SeqLE,
)
from repro.nova.lexer import Token, TokenKind, tokenize

_BINOP_LEVELS: list[list[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_MEM_SPACES = ("sram", "sdram", "scratch", "rfifo", "tfifo")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token utilities --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check_punct(self, text: str) -> bool:
        return self.peek().is_punct(text)

    def check_keyword(self, text: str) -> bool:
        return self.peek().is_keyword(text)

    def accept_punct(self, text: str) -> bool:
        if self.check_punct(text):
            self.next()
            return True
        return False

    def accept_keyword(self, text: str) -> bool:
        if self.check_keyword(text):
            self.next()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected '{text}', found '{tok}'", tok.span)
        return self.next()

    def expect_keyword(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(text):
            raise ParseError(f"expected '{text}', found '{tok}'", tok.span)
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found '{tok}'", tok.span)
        return self.next()

    def expect_int(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.INT:
            raise ParseError(f"expected integer, found '{tok}'", tok.span)
        return self.next()

    # -- layouts -----------------------------------------------------------

    def parse_layout_expr(self) -> LayoutExpr:
        """``primary ('##' primary)*``"""
        first = self.parse_layout_primary()
        if not self.check_punct("##"):
            return first
        parts = [first]
        while self.accept_punct("##"):
            parts.append(self.parse_layout_primary())
        return ConcatLE(parts, span=first.span)

    def parse_layout_primary(self) -> LayoutExpr:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.next()
            return NameLE(tok.text, span=tok.span)
        if tok.is_punct("{"):
            self.next()
            if self.peek().kind is TokenKind.INT and self.peek(1).is_punct("}"):
                bits = self.expect_int()
                self.expect_punct("}")
                return GapLE(bits.value or 0, span=tok.span)
            items: list[tuple[str, LayoutExpr]] = []
            while not self.check_punct("}"):
                name = self.expect_ident()
                self.expect_punct(":")
                items.append((name.text, self.parse_layout_item()))
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            return SeqLE(items, span=tok.span)
        raise ParseError(f"expected layout, found '{tok}'", tok.span)

    def parse_layout_item(self) -> LayoutExpr:
        """The right-hand side of ``name :`` — bits, overlay, or layout."""
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.next()
            return BitsLE(tok.value or 0, span=tok.span)
        if tok.is_keyword("overlay"):
            self.next()
            self.expect_punct("{")
            alts: list[tuple[str, LayoutExpr]] = []
            while True:
                name = self.expect_ident()
                self.expect_punct(":")
                alts.append((name.text, self.parse_layout_item()))
                if not self.accept_punct("|"):
                    break
            self.expect_punct("}")
            return OverlayLE(alts, span=tok.span)
        return self.parse_layout_expr()

    # -- types -------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        tok = self.peek()
        if tok.is_keyword("word"):
            self.next()
            if self.accept_punct("["):
                length = self.expect_int()
                self.expect_punct("]")
                return ast.WordArrayTE(length.value or 0, span=tok.span)
            return ast.WordTE(span=tok.span)
        if tok.is_keyword("bool"):
            self.next()
            return ast.BoolTE(span=tok.span)
        if tok.is_keyword("unit"):
            self.next()
            return ast.UnitTE(span=tok.span)
        if tok.is_keyword("packed") or tok.is_keyword("unpacked"):
            self.next()
            self.expect_punct("(")
            layout = self.parse_layout_expr()
            self.expect_punct(")")
            cls = ast.PackedTE if tok.text == "packed" else ast.UnpackedTE
            return cls(layout, span=tok.span)
        if tok.is_keyword("exn"):
            self.next()
            self.expect_punct("(")
            if self.accept_punct(")"):
                return ast.ExnTE(ast.UnitTE(span=tok.span), span=tok.span)
            arg = self.parse_type()
            self.expect_punct(")")
            return ast.ExnTE(arg, span=tok.span)
        if tok.is_punct("("):
            self.next()
            if self.accept_punct(")"):
                return ast.UnitTE(span=tok.span)
            elems = [self.parse_type()]
            while self.accept_punct(","):
                elems.append(self.parse_type())
            self.expect_punct(")")
            if len(elems) == 1:
                return elems[0]
            return ast.TupleTE(elems, span=tok.span)
        if tok.is_punct("["):
            self.next()
            fields: list[tuple[str, ast.TypeExpr]] = []
            while not self.check_punct("]"):
                name = self.expect_ident()
                self.expect_punct(":")
                fields.append((name.text, self.parse_type()))
                if not self.accept_punct(","):
                    break
            self.expect_punct("]")
            return ast.RecordTE(fields, span=tok.span)
        raise ParseError(f"expected type, found '{tok}'", tok.span)

    # -- patterns ----------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            if tok.text == "_":
                self.next()
                return ast.WildPat(span=tok.span)
            self.next()
            ty = None
            if self.accept_punct(":"):
                ty = self.parse_type()
            return ast.VarPat(tok.text, ty, span=tok.span)
        if tok.is_punct("("):
            self.next()
            if self.accept_punct(")"):
                return ast.TuplePat([], span=tok.span)
            elems = [self.parse_pattern()]
            while self.accept_punct(","):
                elems.append(self.parse_pattern())
            self.expect_punct(")")
            if len(elems) == 1:
                return elems[0]
            return ast.TuplePat(elems, span=tok.span)
        if tok.is_punct("["):
            self.next()
            fields: list[tuple[str, ast.Pattern]] = []
            while not self.check_punct("]"):
                name = self.expect_ident()
                if self.accept_punct("="):
                    pat: ast.Pattern = self.parse_pattern()
                elif self.accept_punct(":"):
                    ty = self.parse_type()
                    pat = ast.VarPat(name.text, ty, span=name.span)
                else:
                    pat = ast.VarPat(name.text, None, span=name.span)
                fields.append((name.text, pat))
                if not self.accept_punct(","):
                    break
            self.expect_punct("]")
            return ast.RecordPat(fields, span=tok.span)
        raise ParseError(f"expected pattern, found '{tok}'", tok.span)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_binary(0)

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINOP_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINOP_LEVELS[level]
        while self.peek().kind is TokenKind.PUNCT and self.peek().text in ops:
            op = self.next()
            right = self.parse_binary(level + 1)
            left = ast.BinOp(op.text, left, right, span=op.span)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "~", "!"):
            self.next()
            operand = self.parse_unary()
            return ast.UnOp(tok.text, operand, span=tok.span)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_atom()
        while self.check_punct("."):
            dot = self.next()
            tok = self.peek()
            if tok.kind in (TokenKind.IDENT, TokenKind.INT):
                self.next()
                expr = ast.FieldAccess(expr, tok.text, span=dot.span)
            else:
                raise ParseError(f"expected field name, found '{tok}'", tok.span)
        return expr

    def parse_atom(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.next()
            return ast.IntLit(tok.value or 0, span=tok.span)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self.next()
            return ast.BoolLit(tok.text == "true", span=tok.span)
        if tok.text in _MEM_SPACES and tok.kind is TokenKind.KEYWORD:
            return self.parse_mem(tok.text)
        if tok.is_keyword("hash"):
            self.next()
            self.expect_punct("(")
            operand = self.parse_expr()
            self.expect_punct(")")
            return ast.HashOp(operand, span=tok.span)
        if tok.is_keyword("csr"):
            self.next()
            self.expect_punct("(")
            number = self.expect_int()
            self.expect_punct(")")
            if self.accept_punct("<-"):
                value = self.parse_expr()
                return ast.CsrOp(number.value or 0, value, span=tok.span)
            return ast.CsrOp(number.value or 0, None, span=tok.span)
        if tok.is_keyword("ctx_swap"):
            self.next()
            self.expect_punct("(")
            self.expect_punct(")")
            return ast.CtxSwap(span=tok.span)
        if tok.is_keyword("lock") or tok.is_keyword("unlock"):
            self.next()
            self.expect_punct("(")
            number = self.expect_int()
            self.expect_punct(")")
            return ast.LockOp(tok.text, number.value or 0, span=tok.span)
        if tok.is_keyword("pack") or tok.is_keyword("unpack"):
            self.next()
            self.expect_punct("[")
            layout = self.parse_layout_expr()
            self.expect_punct("]")
            if tok.text == "unpack":
                self.expect_punct("(")
                arg = self.parse_expr()
                self.expect_punct(")")
                return ast.UnpackExpr(layout, arg, span=tok.span)
            # pack accepts either a parenthesized expression or a record
            # literal directly: pack[l] [ f = ... ].
            if self.check_punct("["):
                arg = self.parse_record_literal()
            else:
                self.expect_punct("(")
                arg = self.parse_expr()
                self.expect_punct(")")
            return ast.PackExpr(layout, arg, span=tok.span)
        if tok.is_keyword("raise"):
            self.next()
            name = self.expect_ident()
            if self.check_punct("("):
                arg = self.parse_tuple_or_paren()
            elif self.check_punct("["):
                arg = self.parse_record_literal()
            else:
                arg = ast.UnitLit(span=tok.span)
            return ast.RaiseExpr(name.text, arg, span=tok.span)
        if tok.is_keyword("try"):
            self.next()
            body = self.parse_block()
            handlers: list[ast.Handler] = []
            while self.check_keyword("handle"):
                h = self.next()
                name = self.expect_ident()
                pat = self.parse_pattern()
                hbody = self.parse_block()
                handlers.append(ast.Handler(name.text, pat, hbody, span=h.span))
            if not handlers:
                raise ParseError("try without handlers", tok.span)
            return ast.TryExpr(body, handlers, span=tok.span)
        if tok.is_keyword("if"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            then_branch = self.parse_expr()
            else_branch = None
            if self.accept_keyword("else"):
                else_branch = self.parse_expr()
            return ast.IfExpr(cond, then_branch, else_branch, span=tok.span)
        if tok.is_keyword("while"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            body = self.parse_block()
            return ast.WhileExpr(cond, body, span=tok.span)
        if tok.kind is TokenKind.IDENT:
            self.next()
            if self.check_punct("("):
                arg = self.parse_tuple_or_paren()
                return ast.Call(tok.text, arg, span=tok.span)
            if self.check_punct("[") and self._looks_like_record_literal():
                arg = self.parse_record_literal()
                return ast.Call(tok.text, arg, span=tok.span)
            return ast.VarRef(tok.text, span=tok.span)
        if tok.is_punct("("):
            return self.parse_tuple_or_paren()
        if tok.is_punct("["):
            return self.parse_record_literal()
        if tok.is_punct("{"):
            return self.parse_block()
        raise ParseError(f"expected expression, found '{tok}'", tok.span)

    def _looks_like_record_literal(self) -> bool:
        """Distinguish ``f[x = 1]`` (record call) from a stray bracket."""
        if not self.peek().is_punct("["):
            return False
        if self.peek(1).is_punct("]"):
            return True
        return self.peek(1).kind is TokenKind.IDENT and self.peek(2).is_punct("=")

    def parse_mem(self, space: str) -> ast.Expr:
        tok = self.next()
        self.expect_punct("(")
        addr = self.parse_expr()
        count = None
        if self.accept_punct(","):
            count_tok = self.expect_int()
            count = count_tok.value
        self.expect_punct(")")
        if self.accept_punct("<-"):
            value = self.parse_expr()
            return ast.MemWrite(space, addr, value, span=tok.span)
        return ast.MemRead(space, addr, count, span=tok.span)

    def parse_tuple_or_paren(self) -> ast.Expr:
        tok = self.expect_punct("(")
        if self.accept_punct(")"):
            return ast.UnitLit(span=tok.span)
        elems = [self.parse_expr()]
        while self.accept_punct(","):
            elems.append(self.parse_expr())
        self.expect_punct(")")
        if len(elems) == 1:
            return elems[0]
        return ast.TupleExpr(elems, span=tok.span)

    def parse_record_literal(self) -> ast.Expr:
        tok = self.expect_punct("[")
        fields: list[tuple[str, ast.Expr]] = []
        while not self.check_punct("]"):
            name = self.expect_ident()
            if self.accept_punct("="):
                value = self.parse_expr()
            else:
                value = ast.VarRef(name.text, span=name.span)
            fields.append((name.text, value))
            if not self.accept_punct(","):
                break
        self.expect_punct("]")
        return ast.RecordExpr(fields, span=tok.span)

    # -- blocks and statements ----------------------------------------------

    def parse_block(self) -> ast.Block:
        tok = self.expect_punct("{")
        stmts: list[ast.Stmt] = []
        result: ast.Expr | None = None
        while not self.check_punct("}"):
            if self.check_keyword("fun"):
                fun_tok = self.next()
                decl = self.parse_fun_decl(fun_tok)
                stmts.append(ast.FunStmt(decl, span=fun_tok.span))
                continue
            if self.check_keyword("let"):
                let_tok = self.next()
                pat = self.parse_pattern()
                self.expect_punct("=")
                init = self.parse_expr()
                self.expect_punct(";")
                stmts.append(ast.LetStmt(pat, init, span=let_tok.span))
                continue
            if (
                self.peek().kind is TokenKind.IDENT
                and self.peek(1).is_punct(":=")
            ):
                name = self.next()
                self.next()  # :=
                value = self.parse_expr()
                self.expect_punct(";")
                stmts.append(ast.AssignStmt(name.text, value, span=name.span))
                continue
            expr = self.parse_expr()
            if self.accept_punct(";"):
                stmts.append(ast.ExprStmt(expr, span=expr.span))
            else:
                result = expr
                break
        self.expect_punct("}")
        return ast.Block(stmts, result, span=tok.span)

    # -- declarations ---------------------------------------------------------

    def parse_fun_decl(self, fun_tok) -> ast.FunDecl:
        """The part after the ``fun`` keyword (shared by top-level and
        nested declarations)."""
        name = self.expect_ident()
        if self.check_punct("(") or self.check_punct("["):
            param = self.parse_pattern()
        else:
            raise ParseError("expected parameter list", self.peek().span)
        if not isinstance(param, (ast.TuplePat, ast.RecordPat)):
            param = ast.TuplePat([param], span=param.span)
        ret = None
        if self.accept_punct(":"):
            ret = self.parse_type()
        body = self.parse_block()
        return ast.FunDecl(name.text, param, ret, body, span=fun_tok.span)

    def parse_program(self, filename: str) -> ast.Program:
        layouts: list[ast.LayoutDecl] = []
        funs: list[ast.FunDecl] = []
        while self.peek().kind is not TokenKind.EOF:
            tok = self.peek()
            if tok.is_keyword("layout"):
                self.next()
                name = self.expect_ident()
                self.expect_punct("=")
                layout = self.parse_layout_expr()
                self.expect_punct(";")
                layouts.append(ast.LayoutDecl(name.text, layout, span=tok.span))
            elif tok.is_keyword("fun"):
                self.next()
                funs.append(self.parse_fun_decl(tok))
            else:
                raise ParseError(
                    f"expected 'layout' or 'fun', found '{tok}'", tok.span
                )
        span = SourceSpan.unknown()
        return ast.Program(layouts, funs, span=span)


def parse_program(text: str, filename: str = "<nova>") -> ast.Program:
    """Parse a whole Nova compilation unit from source text."""
    return _Parser(tokenize(text, filename)).parse_program(filename)


def parse_expr(text: str, filename: str = "<nova>") -> ast.Expr:
    """Parse a single Nova expression (handy in tests)."""
    parser = _Parser(tokenize(text, filename))
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input: '{tok}'", tok.span)
    return expr
