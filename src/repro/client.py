"""``repro.client`` — blocking client for the ``novac serve`` daemon.

A thin synchronous wrapper over the newline-JSON protocol
(:mod:`repro.proto`): open a socket, write one request line, read one
response line.  Used by ``novac client`` and by ``novac --connect``,
whose contract is *graceful degradation* — :func:`try_connect` returns
``None`` when no daemon is reachable and the CLI falls back to an
in-process compile, so a dead daemon never breaks a build.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.compiler import CompileOptions
from repro.proto import MAX_LINE, ProtocolError, decode, encode, options_to_wire


class ServeError(RuntimeError):
    """The daemon answered with a structured error (or the link died)."""

    def __init__(self, kind: str, message: str, location: str | None = None):
        prefix = f"{location}: " if location else ""
        super().__init__(f"{prefix}{message} [{kind}]")
        self.kind = kind
        self.location = location


def parse_endpoint(endpoint: str) -> tuple[str, str | tuple[str, int]]:
    """``('unix', path)`` or ``('tcp', (host, port))``.

    Accepts a Unix socket path (anything with a ``/`` or no ``:``), a
    ``host:port`` pair, or an explicit ``tcp:host:port``.
    """
    if endpoint.startswith("tcp:"):
        host, _, port = endpoint[4:].rpartition(":")
        return "tcp", (host or "127.0.0.1", int(port))
    if "/" in endpoint or ":" not in endpoint:
        return "unix", endpoint
    host, _, port = endpoint.rpartition(":")
    return "tcp", (host or "127.0.0.1", int(port))


class ServeClient:
    """One connection; requests are answered in order over it."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = sock.makefile("rb")

    @staticmethod
    def connect(endpoint: str, timeout: float | None = None) -> "ServeClient":
        kind, address = parse_endpoint(endpoint)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
        sock.settimeout(None)
        return ServeClient(sock)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- protocol ------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One round trip; raises :class:`ServeError` on link failure."""
        try:
            self._sock.sendall(encode(payload))
            line = self._reader.readline(MAX_LINE + 1)
        except OSError as exc:
            raise ServeError("ConnectionError", str(exc)) from None
        if not line:
            raise ServeError("ConnectionError", "daemon closed the connection")
        try:
            return decode(line)
        except ProtocolError as exc:
            raise ServeError("ProtocolError", str(exc)) from None

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("kind", "ServeError"),
                error.get("message", "request failed"),
                error.get("location"),
            )
        return response

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> dict:
        return self._checked({"op": "ping"})

    def stats(self) -> dict:
        return self._checked({"op": "stats"})

    def shutdown(self) -> dict:
        return self._checked({"op": "shutdown"})

    def crash_worker(self) -> dict:
        """Returns the daemon's structured failure (never raises on it)."""
        return self.request({"op": "crash-worker"})

    def compile_source(
        self,
        source: str,
        filename: str = "<remote>",
        options: CompileOptions | None = None,
        payload: str = "pretty",
        trace: bool = False,
        raw: bool = False,
    ) -> dict:
        """Compile one source; the response body (see :mod:`repro.proto`).

        ``raw=True`` returns structured compile failures as the response
        dict instead of raising, mirroring batch-unit semantics.
        """
        request = {
            "op": "compile",
            "source": source,
            "filename": filename,
            "options": options_to_wire(options or CompileOptions()),
            "payload": payload,
            "trace": trace,
        }
        if raw:
            return self.request(request)
        return self._checked(request)

    def compile_file(self, path: str, **kwargs) -> dict:
        with open(path) as handle:
            return self.compile_source(handle.read(), filename=path, **kwargs)

    def batch(
        self,
        units: list[tuple[str, str]],
        options: CompileOptions | None = None,
        payload: str = "none",
        trace: bool = False,
    ) -> dict:
        """Compile many ``(filename, source)`` pairs in one request."""
        return self._checked(
            {
                "op": "batch",
                "units": [
                    {"filename": name, "source": text} for name, text in units
                ],
                "options": options_to_wire(options or CompileOptions()),
                "payload": payload,
                "trace": trace,
            }
        )


def try_connect(
    endpoint: str, timeout: float = 2.0
) -> ServeClient | None:
    """A live client, or None when no daemon answers a ping there."""
    try:
        client = ServeClient.connect(endpoint, timeout=timeout)
    except OSError:
        return None
    try:
        client.ping()
    except ServeError:
        client.close()
        return None
    return client


def _endpoint_from_args(args) -> str:
    if args.socket:
        return args.socket
    return f"tcp:{args.host}:{args.port}"


def client_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="novac client", description="talk to a novac serve daemon"
    )
    parser.add_argument("--socket", metavar="PATH", help="Unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, metavar="N")
    parser.add_argument("--ping", action="store_true")
    parser.add_argument("--stats", action="store_true")
    parser.add_argument("--shutdown", action="store_true")
    parser.add_argument(
        "--listing", action="store_true",
        help="ask for IXP assembler-style output",
    )
    parser.add_argument("sources", nargs="*", metavar="source")
    args = parser.parse_args(argv)
    if not args.socket and args.port is None:
        parser.error("one of --socket or --port is required")
    endpoint = _endpoint_from_args(args)
    try:
        client = ServeClient.connect(endpoint, timeout=5.0)
    except OSError as exc:
        print(f"novac client: cannot reach {endpoint}: {exc}", file=sys.stderr)
        return 1
    failed = 0
    with client:
        try:
            if args.ping:
                pong = client.ping()
                print(f"pong (daemon pid {pong.get('pid')})")
            if args.stats:
                import json

                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            for path in args.sources:
                try:
                    body = client.compile_file(
                        path, payload="listing" if args.listing else "pretty"
                    )
                except (OSError, ServeError) as exc:
                    print(f"novac client: {path}: {exc}", file=sys.stderr)
                    failed += 1
                    continue
                if body.get("payload"):
                    print(body["payload"], end="")
            if args.shutdown:
                client.shutdown()
                print("daemon drained and stopped")
        except ServeError as exc:
            print(f"novac client: {exc}", file=sys.stderr)
            return 1
    return 0 if not failed else 1


if __name__ == "__main__":
    sys.exit(client_main())
