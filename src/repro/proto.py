"""``repro.proto`` — the ``novac serve`` wire protocol.

Newline-delimited JSON: every request and every response is one JSON
object on one line, UTF-8, ``\\n``-terminated.  One connection carries
any number of requests, answered in order.  Shared by the asyncio daemon
(:mod:`repro.serve`) and the blocking client (:mod:`repro.client`).

Requests (``op`` selects the verb):

- ``{"op": "compile", "source": ..., "filename": ..., "options": {...},
  "payload": "pretty" | "listing" | "none", "trace": bool, "id": ...}``
- ``{"op": "batch", "units": [{"filename": ..., "source": ...}, ...],
  "options": {...}, "trace": bool}``
- ``{"op": "stats"}`` / ``{"op": "ping"}``
- ``{"op": "shutdown"}`` — drain: in-flight requests complete first.
- ``{"op": "crash-worker"}`` — kill one pool worker mid-request
  (operational/testing aid: proves the daemon degrades structurally).

Responses always carry ``ok`` (bool) and echo ``op`` and any ``id``;
failures carry ``error: {kind, message, location}``.

Options travel as a *sparse* nested dict: only the knobs the client
explicitly set (:func:`options_to_wire` diffs against the defaults), so
the daemon can apply its own defaults — e.g. the portfolio solver — to
everything the client left unsaid.
"""

from __future__ import annotations

import dataclasses
import json

from repro.alloc.allocator import AllocOptions
from repro.alloc.ilpmodel import ModelOptions
from repro.compiler import CompileOptions
from repro.ilp.solve import SolveOptions

#: One request or response line may not exceed this (64 MiB): big enough
#: for any real source file or listing, small enough to bound memory.
MAX_LINE = 64 * 1024 * 1024

#: Payload renderings a compile request may ask for.
PAYLOADS = ("pretty", "listing", "none")


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one protocol line; raises :class:`ProtocolError`."""
    if len(line) > MAX_LINE:
        raise ProtocolError(f"line exceeds {MAX_LINE} bytes")
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return obj


# --------------------------------------------------------------------------
# Options over the wire
# --------------------------------------------------------------------------

#: Nested dataclass fields of the options tree, by field name.
_NESTED = {"alloc": AllocOptions, "model": ModelOptions, "solve": SolveOptions}

#: Runtime-only fields the daemon owns; never accepted from the wire.
_SERVER_ONLY = {"hint_dir", "hint_key"}


def options_to_wire(options: CompileOptions) -> dict:
    """Sparse dict of the knobs that differ from the defaults."""
    return _diff(options, CompileOptions())


def _diff(value, default):
    out = {}
    for f in dataclasses.fields(value):
        if f.name in _SERVER_ONLY:
            continue
        current = getattr(value, f.name)
        base = getattr(default, f.name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            nested = _diff(current, base)
            if nested:
                out[f.name] = nested
        elif current != base:
            out[f.name] = current
    return out


def options_from_wire(data: dict | None) -> CompileOptions:
    """Rebuild a :class:`CompileOptions` tree from a sparse wire dict.

    Unknown keys, server-only keys, and type mismatches raise
    :class:`ProtocolError` — a daemon must never apply half-understood
    options (the cache key would cover settings that took no effect).
    """
    options = CompileOptions()
    _apply(options, data or {}, "options")
    return options


def _apply(target, data, path):
    if not isinstance(data, dict):
        raise ProtocolError(f"{path} must be an object, got {type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(target)}
    for key, value in data.items():
        if key in _SERVER_ONLY:
            raise ProtocolError(f"{path}.{key} is server-side only")
        f = fields.get(key)
        if f is None:
            raise ProtocolError(f"unknown option {path}.{key}")
        if key in _NESTED:
            _apply(getattr(target, key), value, f"{path}.{key}")
        elif isinstance(value, (str, int, float, bool)) or value is None:
            setattr(target, key, value)
        else:
            raise ProtocolError(
                f"{path}.{key} must be a scalar, got {type(value).__name__}"
            )


# --------------------------------------------------------------------------
# Response helpers
# --------------------------------------------------------------------------


def error_response(
    op: str,
    kind: str,
    message: str,
    location: str | None = None,
    request_id=None,
) -> dict:
    out = {
        "ok": False,
        "op": op,
        "error": {"kind": kind, "message": message, "location": location},
    }
    if request_id is not None:
        out["id"] = request_id
    return out
