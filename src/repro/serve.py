"""``repro.serve`` — the ``novac serve`` persistent compile daemon.

One long-lived process owns what every ad-hoc ``novac`` invocation pays
for from scratch: a shared :class:`repro.cache.CompileCache`, a warm
:class:`~concurrent.futures.ProcessPoolExecutor` of compile workers
(imports and scipy already loaded), a hot in-memory LRU of rendered
responses, and the :class:`repro.ilp.portfolio.HintStore` that
warm-starts the solver portfolio on cache misses.

The daemon is a stdlib-``asyncio`` socket server speaking the
newline-JSON protocol of :mod:`repro.proto` over a Unix socket (or TCP
for tests/containers).  A compile request walks three tiers::

    hot LRU (rendered response, sub-ms)
      → disk cache (unpickle an artifact, a few ms)
        → worker pool (full compile; allocation runs the solver
          portfolio, warm-started from the nearest prior solution)

Policy the daemon adds on top of the client's sparse options:

- When the client did not explicitly pick a solver engine, allocation
  runs ``engine="portfolio"`` (``highs`` and ``bnb`` race; see
  :mod:`repro.ilp.portfolio`).
- Portfolio solves get ``hint_dir`` under the cache directory and a
  ``hint_key`` derived from the *front-end* fingerprint + source, so
  allocator-knob-only variants of one program share one incumbent.
  Both fields are fingerprint-excluded — they never change cache keys.

Failure model: a compile error is a structured per-request failure,
never a daemon exit.  A killed pool worker breaks the whole
``ProcessPoolExecutor`` (stdlib semantics); the daemon answers the
in-flight request with a ``WorkerCrash`` error, rebuilds the pool
(generation-guarded so concurrent requests rebuild once), and the next
request compiles normally.  ``shutdown`` drains: new compiles are
refused, in-flight ones complete, then the listener, pool, and socket
file are torn down.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import math
import multiprocessing
import os
import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.batch import BatchError, default_jobs, merge_cache_stats
from repro.cache import CompileCache, cache_key, cached_compile, frontend_fingerprint
from repro.compiler import Compilation, CompileOptions
from repro.proto import (
    MAX_LINE,
    PAYLOADS,
    ProtocolError,
    decode,
    encode,
    error_response,
    options_from_wire,
)
from repro.trace import Tracer


@dataclass
class ServeConfig:
    """Daemon knobs (mirrors the ``novac serve`` CLI)."""

    socket: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    cache_dir: str = ".novac-cache"
    jobs: int = 0  # 0 = default_jobs()
    #: rendered responses kept in the in-memory hot tier.
    hot_entries: int = 64
    #: default cache-miss solves to the highs+bnb race (clients that set
    #: an engine explicitly are left alone).
    portfolio: bool = True

    def endpoint(self) -> str:
        if self.socket:
            return self.socket
        return f"{self.host}:{self.port}"


def hint_key_for(source: str, options: CompileOptions) -> str:
    """Warm-start key: front-end fingerprint + source.

    Deliberately coarser than :func:`repro.cache.cache_key` — two option
    points differing only in allocator knobs hash identically, so a
    solution found under one seeds the portfolio under the other.
    """
    digest = hashlib.sha256()
    digest.update(frontend_fingerprint(options).encode())
    digest.update(b"\n")
    digest.update(source.encode())
    return digest.hexdigest()


# --------------------------------------------------------------------------
# Worker-side compile (module-level: must pickle into the pool)
# --------------------------------------------------------------------------


def _render_payload(
    comp: Compilation, kind: str, filename: str
) -> str | None:
    """Render the artifact form a client asked for (in the worker)."""
    if kind == "none":
        return None
    graph = comp.physical if comp.alloc is not None else comp.flowgraph
    if kind == "listing":
        from repro.ixp.listing import render_listing

        return render_listing(graph, title=filename)
    return graph.pretty()


def _summarize(comp: Compilation) -> dict:
    out: dict[str, object] = {
        "instructions": comp.flowgraph.num_instructions(),
    }
    if comp.alloc is not None:
        obj = comp.alloc
        out["alloc"] = {
            "status": obj.status,
            "moves": obj.moves,
            "spills": obj.spills,
            "variables": obj.variables,
            "constraints": obj.constraints,
            "fallback": obj.fallback,
        }
    return out


def _serve_unit(
    filename: str,
    source: str,
    options: CompileOptions,
    cache_dir: str,
    payload_kind: str,
    trace: bool,
) -> dict:
    """One pooled compile; returns a JSON-able response body.

    Never raises (a raise would poison the future with an arbitrary,
    possibly unpicklable exception): failures come back as the same
    structured error shape :class:`repro.batch.BatchError` gives batch
    units.
    """
    tracer = Tracer() if trace else None
    cache = CompileCache(cache_dir, tracer)
    start = time.perf_counter()
    try:
        comp, state = cached_compile(source, filename, options, cache, tracer)
        body = {
            "ok": True,
            "cache": state,
            "payload": _render_payload(comp, payload_kind, filename),
            "summary": _summarize(comp),
        }
    except Exception as exc:
        err = BatchError.from_exception(exc)
        body = {
            "ok": False,
            "cache": "miss",
            "error": {
                "kind": err.kind,
                "message": err.message,
                "location": err.location,
            },
        }
    body["seconds"] = round(time.perf_counter() - start, 6)
    body["spans"] = (
        [sp.as_dict() for sp in tracer.spans] if tracer is not None else []
    )
    body["cache_stats"] = cache.stats.as_dict()
    return body


def _crash_worker() -> None:
    """Die without cleanup — the testable stand-in for a killed worker."""
    os._exit(1)


def _worker_pid() -> int:
    return os.getpid()


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------


def _nearest_rank(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class Metrics:
    """Request counters + a bounded latency reservoir (per client/global)."""

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.latencies_ms: deque[float] = deque(maxlen=4096)

    def record(self, ms: float, cache: str, ok: bool) -> None:
        self.requests += 1
        self.latencies_ms.append(ms)
        if not ok:
            self.errors += 1
        elif cache in ("hot", "hit"):
            self.hits += 1
        elif cache == "miss":
            self.misses += 1

    def snapshot(self) -> dict:
        ordered = sorted(self.latencies_ms)
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "p50_ms": round(_nearest_rank(ordered, 50), 3),
            "p95_ms": round(_nearest_rank(ordered, 95), 3),
        }


# --------------------------------------------------------------------------
# The server
# --------------------------------------------------------------------------


class CompileServer:
    """The asyncio daemon; ``asyncio.run(CompileServer(cfg).run())``."""

    def __init__(self, config: ServeConfig):
        if not config.socket and config.port is None:
            raise ValueError("serve needs --socket or --port")
        self.config = config
        self.jobs = config.jobs or default_jobs()
        self.cache_root = Path(config.cache_dir)
        self.cache = CompileCache(self.cache_root)
        self.hint_dir = self.cache_root / "hints"
        #: rendered responses keyed by cache key; OrderedDict as LRU.
        self.hot: OrderedDict[str, dict] = OrderedDict()
        self.metrics = Metrics()
        self.worker_cache_stats: dict[str, int] = {}
        self.pool_restarts = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._inflight = 0
        self._draining = False
        self._stop: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- pool lifecycle ------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)

    @property
    def pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _rebuild_pool(self, generation: int) -> None:
        """Replace a broken pool exactly once per breakage.

        All request handlers share the event-loop thread and there is no
        ``await`` between the generation check and the swap, so two
        handlers observing the same broken generation still rebuild
        once.
        """
        if generation != self._pool_generation:
            return  # someone already rebuilt it
        broken, self._pool = self._pool, self._make_pool()
        self._pool_generation += 1
        self.pool_restarts += 1
        if broken is not None:
            broken.shutdown(wait=False)

    def worker_pids(self) -> list[int]:
        processes = getattr(self.pool, "_processes", None) or {}
        return sorted(processes.keys())

    # -- request handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = Metrics()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(
                        encode(
                            error_response(
                                "?", "ProtocolError", "request line too long"
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                start = time.perf_counter()
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    response = error_response("?", "ProtocolError", str(exc))
                else:
                    response = await self._dispatch(request, client)
                ms = (time.perf_counter() - start) * 1000
                op = response.get("op", "?")
                if op in ("compile", "batch"):
                    cache = response.get("cache", "miss")
                    ok = bool(response.get("ok"))
                    client.record(ms, cache, ok)
                    self.metrics.record(ms, cache, ok)
                    response["server"] = {"ms": round(ms, 3), **client.snapshot()}
                    response.setdefault("spans", []).append(
                        {
                            "name": "serve.request",
                            "parent": None,
                            "start": 0.0,
                            "seconds": round(ms / 1000, 6),
                            "counters": {"op": op, "cache": cache, "ok": ok},
                        }
                    )
                writer.write(encode(response))
                await writer.drain()
                if op == "shutdown" and response.get("ok"):
                    # Response is on the wire; now stop the listener.
                    assert self._stop is not None
                    self._stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict, client: Metrics) -> dict | None:
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping", "pid": os.getpid()}
            if op == "stats":
                return self._stats_response()
            if op == "compile":
                return await self._guarded(self._compile_one(request), op, request_id)
            if op == "batch":
                return await self._guarded(self._batch(request), op, request_id)
            if op == "crash-worker":
                return await self._crash_worker_op()
            if op == "shutdown":
                return await self._shutdown(request)
            return error_response(
                str(op), "ProtocolError", f"unknown op {op!r}", request_id=request_id
            )
        except ProtocolError as exc:
            return error_response(str(op), "ProtocolError", str(exc), request_id=request_id)
        except Exception as exc:  # daemon must not die on a bad request
            err = BatchError.from_exception(exc)
            return error_response(
                str(op), err.kind, err.message, err.location, request_id=request_id
            )

    async def _guarded(self, coro, op: str, request_id) -> dict:
        """Run a compile-class op inside drain/inflight accounting."""
        if self._draining:
            coro.close()
            return error_response(
                op, "Draining", "daemon is shutting down", request_id=request_id
            )
        self._inflight += 1
        try:
            response = await coro
        finally:
            self._inflight -= 1
        if request_id is not None:
            response["id"] = request_id
        return response

    # -- compile -------------------------------------------------------------

    def _resolve_options(self, request: dict) -> CompileOptions:
        """Client's sparse options + the daemon's solver policy."""
        wire = request.get("options") or {}
        options = options_from_wire(wire)
        engine_explicit = "engine" in (wire.get("alloc") or {}).get("solve", {})
        if (
            self.config.portfolio
            and options.run_allocator
            and not engine_explicit
        ):
            options.alloc.solve.engine = "portfolio"
        if options.alloc.solve.engine == "portfolio":
            source = request.get("source") or ""
            options.alloc.solve.hint_dir = str(self.hint_dir)
            options.alloc.solve.hint_key = hint_key_for(source, options)
        return options

    async def _compile_one(self, request: dict) -> dict:
        source = request.get("source")
        if not isinstance(source, str):
            raise ProtocolError("compile needs a string 'source'")
        filename = str(request.get("filename", "<remote>"))
        payload_kind = request.get("payload", "pretty")
        if payload_kind not in PAYLOADS:
            raise ProtocolError(f"payload must be one of {PAYLOADS}")
        want_trace = bool(request.get("trace"))
        options = self._resolve_options(request)
        key = cache_key(source, options)

        hot = self.hot.get(key)
        if hot is not None and hot["payload_kind"] == payload_kind:
            self.hot.move_to_end(key)
            return {
                "ok": True,
                "op": "compile",
                "cache": "hot",
                "payload": hot["payload"],
                "summary": hot["summary"],
                "seconds": 0.0,
                "spans": [],
            }

        # Disk tier: unpickling a slim artifact is a few ms, but off the
        # event loop anyway so a large listing render can't stall other
        # clients.
        body = await asyncio.to_thread(
            self._disk_hit, source, options, payload_kind, filename
        )
        if body is None:
            body = await self._pool_compile(
                filename, source, options, payload_kind, want_trace
            )
        body["op"] = "compile"
        if body.get("ok"):
            self._remember(key, payload_kind, body)
        return body

    def _disk_hit(
        self, source, options, payload_kind, filename
    ) -> dict | None:
        comp = self.cache.get(source, options)
        if comp is None:
            return None
        return {
            "ok": True,
            "cache": "hit",
            "payload": _render_payload(comp, payload_kind, filename),
            "summary": _summarize(comp),
            "seconds": 0.0,
            "spans": [],
        }

    async def _pool_compile(
        self, filename, source, options, payload_kind, want_trace
    ) -> dict:
        generation = self._pool_generation
        future = self.pool.submit(
            _serve_unit,
            filename,
            source,
            options,
            str(self.cache_root),
            payload_kind,
            want_trace,
        )
        try:
            body = await asyncio.wrap_future(future)
        except BrokenProcessPool:
            self._rebuild_pool(generation)
            return error_response(
                "compile",
                "WorkerCrash",
                "a compile worker died; the pool was restarted",
            )
        merge_cache_stats(self.worker_cache_stats, body.pop("cache_stats", {}))
        return body

    def _remember(self, key: str, payload_kind: str, body: dict) -> None:
        self.hot[key] = {
            "payload_kind": payload_kind,
            "payload": body.get("payload"),
            "summary": body.get("summary"),
        }
        self.hot.move_to_end(key)
        while len(self.hot) > self.config.hot_entries:
            self.hot.popitem(last=False)

    # -- batch ---------------------------------------------------------------

    async def _batch(self, request: dict) -> dict:
        units = request.get("units")
        if not isinstance(units, list) or not units:
            raise ProtocolError("batch needs a non-empty 'units' list")
        shared = {
            "options": request.get("options"),
            "payload": request.get("payload", "none"),
            "trace": request.get("trace", False),
        }
        bodies = await asyncio.gather(
            *(
                self._compile_one({**shared, **unit})
                for unit in units
                if isinstance(unit, dict)
            )
        )
        ok = sum(1 for b in bodies if b.get("ok"))
        hits = sum(1 for b in bodies if b.get("cache") in ("hot", "hit"))
        # ok is protocol-level: the batch ran.  Per-unit failures live in
        # each unit body, mirroring local BatchResult semantics.
        return {
            "ok": True,
            "op": "batch",
            "cache": "hit" if hits == len(bodies) else "miss",
            "units": list(bodies),
            "summary": {
                "units": len(bodies),
                "ok": ok,
                "failed": len(bodies) - ok,
                "cache_hits": hits,
                "cache_misses": len(bodies) - hits,
            },
        }

    # -- operational ops -----------------------------------------------------

    def _stats_response(self) -> dict:
        merged = dict(self.cache.stats.as_dict())
        merge_cache_stats(merged, self.worker_cache_stats)
        return {
            "ok": True,
            "op": "stats",
            "cache": merged,
            "hot_entries": len(self.hot),
            "jobs": self.jobs,
            "pool_restarts": self.pool_restarts,
            "workers": self.worker_pids(),
            "clients": self.metrics.snapshot(),
            "draining": self._draining,
        }

    async def _crash_worker_op(self) -> dict:
        """Kill one worker (hard exit) and report the structured failure."""
        generation = self._pool_generation
        future = self.pool.submit(_crash_worker)
        try:
            await asyncio.wrap_future(future)
        except BrokenProcessPool:
            self._rebuild_pool(generation)
            return error_response(
                "crash-worker",
                "WorkerCrash",
                "worker killed; the pool was restarted",
            )
        return error_response(
            "crash-worker", "ServeError", "worker unexpectedly survived"
        )

    async def _shutdown(self, request: dict) -> dict:
        """Drain: refuse new compiles, finish in-flight ones, then stop."""
        self._draining = True
        while self._inflight > 0:
            await asyncio.sleep(0.01)
        # The connection handler sets the stop event *after* this
        # response has been written and drained — a shutdown reply must
        # never race the listener teardown.
        return {"ok": True, "op": "shutdown", "drained": True}

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> None:
        """Serve until a ``shutdown`` request; then tear everything down."""
        self._stop = asyncio.Event()
        # Warm the pool before accepting work so first-request latency is
        # a compile, not jobs × fork+import.
        self.pool
        if self.config.socket:
            path = Path(self.config.socket)
            if path.exists():
                path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(path), limit=MAX_LINE
            )
        else:
            server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_LINE,
            )
            if self.config.port == 0:
                self.config.port = server.sockets[0].getsockname()[1]
        print(
            f"novac-serve: listening on {self.config.endpoint()} "
            f"(jobs={self.jobs}, cache={self.cache_root})",
            flush=True,
        )
        try:
            async with server:
                await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._writers):
                writer.close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self.config.socket:
                try:
                    os.unlink(self.config.socket)
                except OSError:
                    pass


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="novac serve",
        description="persistent compile daemon (shared cache + warm pool)",
    )
    parser.add_argument("--socket", metavar="PATH", help="Unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, metavar="N", help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--cache-dir", default=".novac-cache", metavar="DIR",
        help="compile cache directory (default .novac-cache)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="pool workers (default: cores - 1)",
    )
    parser.add_argument(
        "--hot", type=int, default=64, metavar="N",
        help="rendered responses kept in memory (default 64)",
    )
    parser.add_argument(
        "--no-portfolio", action="store_true",
        help="keep the client's solver engine instead of racing highs+bnb",
    )
    args = parser.parse_args(argv)
    if not args.socket and args.port is None:
        parser.error("one of --socket or --port is required")
    config = ServeConfig(
        socket=args.socket,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        hot_entries=args.hot,
        portfolio=not args.no_portfolio,
    )
    try:
        asyncio.run(CompileServer(config).run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(serve_main())
