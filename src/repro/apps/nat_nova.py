"""IPv6 → IPv4 NAT in Nova (paper Section 11, third benchmark).

The fast path: read the 40-byte IPv6 header from SDRAM, unpack it
through layouts (including an overlay over version/traffic-class), map
both 128-bit addresses to IPv4 addresses via a direct-mapped SRAM table
indexed by the hardware hash unit, build the 20-byte IPv4 header with
``pack``, compute the RFC 1071 header checksum, and write the header to
the new packet start — which moved by 20 bytes, so the write is split to
respect SDRAM's 8-byte alignment ("Because of the different header
sizes, the start of the packet must be moved to a new location and care
is required in updating the new checksum field").
"""

from __future__ import annotations

from repro.apps.aes_nova import AppBundle
from repro.apps.refimpl import nat

#: SRAM word address of the 256-entry direct-mapped translation table.
NAT_TABLE_BASE = 0x3000

NAT_NOVA_SOURCE = f"""
// IPv6 -> IPv4 network address translation (fast path).

layout ipv6_address = {{ a1 : 32, a2 : 32, a3 : 32, a4 : 32 }};

layout ipv6_header = {{
  vertc : overlay {{ whole : 12
                   | parts : {{ version : 4, tclass : 8 }} }},
  flow_label : 20,
  payload_length : 16, next_header : 8, hop_limit : 8,
  src_address : ipv6_address, dst_address : ipv6_address
}};

layout ipv4_header = {{
  version : 4, ihl : 4, tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, checksum : 16,
  src : 32, dst : 32
}};

// Direct-mapped translation-cache lookup via the hash unit.
fun map_address (a1, a2, a3, a4) : word {{
  let idx = hash(a1 ^ a2 ^ a3 ^ a4) & 0xff;
  sram({hex(NAT_TABLE_BASE)} + idx)
}}

fun csum5 (h0, h1, h2, h3, h4) : word {{
  let s = (h0 >> 16) + (h0 & 0xffff)
        + (h1 >> 16) + (h1 & 0xffff)
        + (h2 >> 16) + (h2 & 0xffff)
        + (h3 >> 16) + (h3 & 0xffff)
        + (h4 >> 16) + (h4 & 0xffff);
  let f1 = (s & 0xffff) + (s >> 16);
  let f2 = (f1 & 0xffff) + (f1 >> 16);
  (~f2) & 0xffff
}}

fun main (base) : word {{
  // The IPv6 header is 10 words; SDRAM moves at most 8 per transfer.
  let (w0, w1, w2, w3, w4, w5, w6, w7) = sdram(base);
  let (w8, w9) = sdram(base + 8);
  let u = unpack[ipv6_header]((w0, w1, w2, w3, w4, w5, w6, w7, w8, w9));

  try {{
    if (u.vertc.parts.version != 6) raise NotIpv6 (u.vertc.parts.version);

    let src4 = map_address(u.src_address.a1, u.src_address.a2,
                           u.src_address.a3, u.src_address.a4);
    let dst4 = map_address(u.dst_address.a1, u.dst_address.a2,
                           u.dst_address.a3, u.dst_address.a4);
    if (src4 == 0 || dst4 == 0) raise NoMapping (src4 ^ dst4);

    let (h0, h1, h2, h3, h4) = pack[ipv4_header] [
      version = 4, ihl = 5, tos = u.vertc.parts.tclass,
      total_length = u.payload_length + 20,
      ident = 0, flags_frag = 0x4000,
      ttl = u.hop_limit, protocol = u.next_header, checksum = 0,
      src = src4, dst = dst4
    ];
    let ck = csum5(h0, h1, h2, h3, h4);
    let h2f = h2 | ck;

    // New packet start is base+5 (the header shrank by 5 words); SDRAM
    // needs 8-byte alignment, so write 2 words at base+4 (keeping the
    // original word) and 4 words at base+6.
    sdram(base + 4) <- (w4, h0);
    sdram(base + 6) <- (h1, h2f, h3, h4);
    ck
  }}
  handle NotIpv6 (v) {{ 0xffffffff }}
  handle NoMapping (x) {{ 0xfffffffe }}
}}
"""


def nat_memory_image(
    mappings: dict[tuple[int, int, int, int], int],
) -> dict:
    return {"sram": [(NAT_TABLE_BASE, nat.build_nat_table(mappings))]}


def build_nat_app(
    ipv6_words: list[int] | None = None,
    mappings: dict[tuple[int, int, int, int], int] | None = None,
    base: int = 0x200,
) -> AppBundle:
    """The NAT application bundle: one IPv6 packet header in SDRAM."""
    if ipv6_words is None:
        src = (0x20010DB8, 0, 0, 1)
        dst = (0x20010DB8, 0, 0, 2)
        w0 = (6 << 28) | (0x0A << 20) | 0x12345
        w1 = (100 << 16) | (6 << 8) | 64
        ipv6_words = [w0, w1, *src, *dst]
    if mappings is None:
        mappings = {
            tuple(ipv6_words[2:6]): 0x0A000001,
            tuple(ipv6_words[6:10]): 0x0A000002,
        }
    image = nat_memory_image(mappings)
    image.setdefault("sdram", []).append((base, ipv6_words))
    return AppBundle(
        name="nat",
        source=NAT_NOVA_SOURCE,
        memory_image=image,
        inputs={"base": base},
        payload_base=base,
    )


def nat_reference_output(
    ipv6_words: list[int],
    mappings: dict[tuple[int, int, int, int], int],
) -> tuple[list[int], int]:
    """Expected (5 IPv4 header words at base+5, returned checksum)."""
    table = nat.build_nat_table(mappings)
    header = nat.translate_ipv6_to_ipv4(ipv6_words, table)
    return header, header[2] & 0xFFFF
