"""AES Rijndael in Nova (paper Section 11, first benchmark).

Mirrors the paper's implementation choices:

- the encryption state stays in registers at all times,
- all tables (T0..T3 and the final-round S-box) reside in SRAM —
  "resulting in contention" when several threads run,
- the key expansion is statically computed (round keys in scratch),
- the plaintext is read potentially quad-word *misaligned* — the block
  is selected out of a 6-word SDRAM read through two layout views, the
  paper's alignment trick — but the ciphertext is written quad-word
  aligned,
- a TCP-checksum accumulator over the ciphertext is maintained and
  stored behind the payload,
- no CBC: the payload is a whole number of 16-byte blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.refimpl import aes

#: SRAM word addresses of the tables.
T0_BASE = 0x1000
T1_BASE = 0x1100
T2_BASE = 0x1200
T3_BASE = 0x1300
SBOX_BASE = 0x1400

#: Scratch word address of the 44 round-key words.
RK_BASE = 0

#: Where the checksum/summary pair is stored (SDRAM, relative to the
#: payload end; must stay 8-byte aligned).
AES_NOVA_SOURCE = f"""
// AES-128, T-table formulation.  State in registers; tables in SRAM;
// statically expanded round keys in scratch (paper Section 11).

layout aes_block = {{ b0 : 32, b1 : 32, b2 : 32, b3 : 32 }};

fun round_col (a, b, c, d, rk) : word {{
  let t0 = sram({hex(T0_BASE)} + (a >> 24));
  let t1 = sram({hex(T1_BASE)} + ((b >> 16) & 0xff));
  let t2 = sram({hex(T2_BASE)} + ((c >> 8) & 0xff));
  let t3 = sram({hex(T3_BASE)} + (d & 0xff));
  t0 ^ t1 ^ t2 ^ t3 ^ rk
}}

fun final_col (a, b, c, d, rk) : word {{
  let b0 = sram({hex(SBOX_BASE)} + (a >> 24));
  let b1 = sram({hex(SBOX_BASE)} + ((b >> 16) & 0xff));
  let b2 = sram({hex(SBOX_BASE)} + ((c >> 8) & 0xff));
  let b3 = sram({hex(SBOX_BASE)} + (d & 0xff));
  ((b0 << 24) | (b1 << 16) | (b2 << 8) | b3) ^ rk
}}

fun fold16 (x) : word {{
  let y = (x & 0xffff) + (x >> 16);
  (y & 0xffff) + (y >> 16)
}}

// Trailer word stored conceptually behind the payload: block count and
// the running ciphertext checksum, packed through a layout.
layout trailer = {{ nprocessed : 16, cksum : 16 }};

fun main (base, nblocks, align) : word {{
  try {{
  if (align > 1) raise BadAlign (align);
  if (nblocks == 0) raise EmptyPayload;
  let blk = 0;
  let cksum = 0;
  while (blk < nblocks) {{
    let off = base + blk * 4;
    // The plaintext may be quad-word misaligned: pick the block out of
    // six words through the two layout views (paper Section 3.2).
    let (p0, p1, p2, p3, p4, p5) = sdram(off);
    let u =
      if (align == 0) unpack[aes_block ## {{64}}]((p0, p1, p2, p3, p4, p5))
      else unpack[{{32}} ## aes_block ## {{32}}]((p0, p1, p2, p3, p4, p5));

    let (k0, k1, k2, k3) = scratch({RK_BASE});
    let s0 = u.b0 ^ k0;
    let s1 = u.b1 ^ k1;
    let s2 = u.b2 ^ k2;
    let s3 = u.b3 ^ k3;

    let r = 1;
    while (r < 10) {{
      let (rk0, rk1, rk2, rk3) = scratch({RK_BASE} + (r << 2));
      let n0 = round_col(s0, s1, s2, s3, rk0);
      let n1 = round_col(s1, s2, s3, s0, rk1);
      let n2 = round_col(s2, s3, s0, s1, rk2);
      let n3 = round_col(s3, s0, s1, s2, rk3);
      s0 := n0; s1 := n1; s2 := n2; s3 := n3;
      r := r + 1;
    }};

    let (fk0, fk1, fk2, fk3) = scratch({RK_BASE} + 40);
    let c0 = final_col(s0, s1, s2, s3, fk0);
    let c1 = final_col(s1, s2, s3, s0, fk1);
    let c2 = final_col(s2, s3, s0, s1, fk2);
    let c3 = final_col(s3, s0, s1, s2, fk3);

    // Ciphertext goes out quad-word aligned.
    sdram(off) <- (c0, c1, c2, c3);

    // Maintain the checksum accumulator over the ciphertext.
    cksum := fold16(fold16(cksum + fold16(c0) + fold16(c1))
                    + fold16(c2) + fold16(c3));
    blk := blk + 1;
  }};
  pack[trailer] [nprocessed = blk, cksum = cksum]
  }}
  handle BadAlign (a) {{ 0xbad00000 | a }}
  handle EmptyPayload () {{ 0xdead0000 }}
}}
"""


@dataclass
class AppBundle:
    """Everything needed to compile and run one application."""

    name: str
    source: str
    memory_image: dict[str, list[tuple[int, list[int]]]] = field(
        default_factory=dict
    )
    #: default source-level input values
    inputs: dict[str, int] = field(default_factory=dict)
    #: where packet data lives (space, word address)
    payload_space: str = "sdram"
    payload_base: int = 0x100


DEFAULT_AES_KEY = bytes(range(16))


def aes_memory_image(key: bytes = DEFAULT_AES_KEY) -> dict:
    """Table and round-key image for the Nova AES program."""
    t0, t1, t2, t3 = aes.aes_t_tables()
    return {
        "sram": [
            (T0_BASE, t0),
            (T1_BASE, t1),
            (T2_BASE, t2),
            (T3_BASE, t3),
            (SBOX_BASE, list(aes.AES_SBOX)),
        ],
        "scratch": [(RK_BASE, aes.expand_key(key))],
    }


def build_aes_app(
    key: bytes = DEFAULT_AES_KEY,
    payload: bytes | None = None,
    base: int = 0x100,
    align: int = 0,
) -> AppBundle:
    """The AES application with its memory image and default inputs.

    ``payload`` (multiple of 16 bytes) is placed at SDRAM ``base``
    words; ``align=1`` shifts it one word to exercise the misaligned
    path.
    """
    payload = payload or bytes(range(16))
    if len(payload) % 16:
        raise ValueError("payload must be a multiple of 16 bytes")
    words = [
        int.from_bytes(payload[i : i + 4], "big")
        for i in range(0, len(payload), 4)
    ]
    image = aes_memory_image(key)
    image.setdefault("sdram", []).append((base + align, words))
    nblocks = len(payload) // 16
    return AppBundle(
        name="aes",
        source=AES_NOVA_SOURCE,
        memory_image=image,
        inputs={"base": base, "nblocks": nblocks, "align": align},
        payload_base=base,
    )


def aes_reference_ciphertext(
    payload: bytes, key: bytes = DEFAULT_AES_KEY
) -> list[int]:
    """Expected SDRAM words after the Nova program ran (aligned output)."""
    out = aes.aes_encrypt_payload(payload, key)
    return [int.from_bytes(out[i : i + 4], "big") for i in range(0, len(out), 4)]


def aes_reference_checksum(payload: bytes, key: bytes = DEFAULT_AES_KEY) -> int:
    """The trailer word main() returns: packed (nprocessed, cksum)."""

    def fold16(x: int) -> int:
        y = (x & 0xFFFF) + (x >> 16)
        return (y & 0xFFFF) + (y >> 16)

    cksum = 0
    words = aes_reference_ciphertext(payload, key)
    for i in range(0, len(words), 4):
        c0, c1, c2, c3 = words[i : i + 4]
        cksum = fold16(
            fold16(cksum + fold16(c0) + fold16(c1)) + fold16(c2) + fold16(c3)
        )
    nblocks = len(words) // 4
    return ((nblocks & 0xFFFF) << 16) | (cksum & 0xFFFF)
