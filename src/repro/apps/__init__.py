"""The paper's three benchmark applications (Section 11).

- AES Rijndael encryption (NIST FIPS-197), T-table formulation,
- Kasumi (3GPP TS 35.202), the ETSI 3GPP confidentiality cipher,
- IPv6 → IPv4 network address translation.

Each application exists twice: a pure-Python reference implementation
(:mod:`repro.apps.refimpl`) validated against published test vectors,
and a Nova program (``*_nova`` modules) compiled by this repository's
compiler and executed on the IXP simulator — the Nova output is checked
word-for-word against the reference.
"""

from repro.apps.aes_nova import build_aes_app
from repro.apps.kasumi_nova import build_kasumi_app
from repro.apps.nat_nova import build_nat_app

__all__ = ["build_aes_app", "build_kasumi_app", "build_nat_app"]
