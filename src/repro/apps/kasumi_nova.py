"""KASUMI in Nova (paper Section 11, second benchmark).

Implementation choices from the paper:

- the subkey expansion is statically computed, and all per-round subkeys
  are interleaved and packed so that "each iteration performs one
  scratch read to access all the subkey elements",
- all tables are stored in scratch memory except the S9 table, which is
  stored in SRAM,
- the block state (two words) stays in registers; ciphertext is written
  back over the payload.
"""

from __future__ import annotations

from repro.apps.aes_nova import AppBundle
from repro.apps.refimpl import kasumi
from repro.apps.refimpl.kasumi import packed_subkey_words

#: SRAM word address of the 512-entry S9 table.
S9_BASE = 0x2000
#: Scratch word addresses: packed subkeys (32 words), then S7 (128).
SUBKEY_BASE = 0x40
S7_BASE = 0x80

KASUMI_NOVA_SOURCE = f"""
// KASUMI: 8-round Feistel; FO = three FI rounds; FI mixes through the
// S9 (SRAM) and S7 (scratch) tables.  One scratch read per round
// fetches all packed subkeys (paper Section 11); layouts spread the
// packed 16-bit subkeys and split words into halves.

layout round_subkeys = {{
  kl1 : 16, kl2 : 16, ko1 : 16, ko2 : 16,
  ko3 : 16, ki1 : 16, ki2 : 16, ki3 : 16
}};

layout halves = {{ hi : 16, lo : 16 }};

// FI's 16-bit input splits into a 9-bit and a 7-bit part; viewed
// through a layout over the low half of the carrying word.
layout fi_parts = {{16}} ## {{ nine : 9, seven : 7 }};

fun fi (x, ki) : word {{
  let p = unpack[fi_parts](x);
  let s9a = sram({hex(S9_BASE)} + p.nine);
  let nine2 = s9a ^ p.seven;
  let s7a = scratch({hex(S7_BASE)} + p.seven);
  let seven2 = s7a ^ (nine2 & 0x7f);
  let seven3 = seven2 ^ (ki >> 9);
  let nine3 = nine2 ^ (ki & 0x1ff);
  let s9b = sram({hex(S9_BASE)} + nine3);
  let nine4 = s9b ^ seven3;
  let s7b = scratch({hex(S7_BASE)} + seven3);
  let seven4 = s7b ^ (nine4 & 0x7f);
  (seven4 << 9) | nine4
}}

fun rol16_1 (t) : word {{ ((t << 1) | (t >> 15)) & 0xffff }}

fun fl_ (x, kl1, kl2) : word {{
  let h = unpack[halves](x);
  let r2 = h.lo ^ rol16_1(h.hi & kl1);
  let l2 = h.hi ^ rol16_1(r2 | kl2);
  pack[halves] [hi = l2, lo = r2]
}}

fun fo_ (x, ko1, ko2, ko3, ki1, ki2, ki3) : word {{
  let h = unpack[halves](x);
  let t1 = fi(h.hi ^ ko1, ki1) ^ h.lo;
  let t2 = fi(h.lo ^ ko2, ki2) ^ t1;
  let t3 = fi(t1 ^ ko3, ki3) ^ t2;
  pack[halves] [hi = t2, lo = t3]
}}

fun main (base, nblocks) : word {{
  try {{
    if (nblocks == 0) raise EmptyPayload;
    let blk = 0;
    let sum = 0;
    while (blk < nblocks) {{
      let off = base + blk * 2;
      let (l0, r0) = sdram(off);
      let left = l0;
      let right = r0;
      let rnd = 0;
      while (rnd < 8) {{
        // One scratch read for the whole round's packed subkeys.
        let (w0, w1, w2, w3) = scratch({hex(SUBKEY_BASE)} + (rnd << 2));
        let k = unpack[round_subkeys]((w0, w1, w2, w3));
        let temp =
          if (rnd % 2 == 0)
            fo_(fl_(left, k.kl1, k.kl2), k.ko1, k.ko2, k.ko3,
                k.ki1, k.ki2, k.ki3)
          else
            fl_(fo_(left, k.ko1, k.ko2, k.ko3, k.ki1, k.ki2, k.ki3),
                k.kl1, k.kl2);
        let newl = right ^ temp;
        right := left;
        left := newl;
        rnd := rnd + 1;
      }};
      sdram(off) <- (right, left);
      sum := sum ^ right ^ left;
      blk := blk + 1;
    }};
    sum
  }} handle EmptyPayload () {{ 0xdead0000 }}
}}
"""

DEFAULT_KASUMI_KEY = bytes.fromhex("2bd6459f82c5b300952c49104881ff48")


def kasumi_memory_image(key: bytes = DEFAULT_KASUMI_KEY) -> dict:
    return {
        "sram": [(S9_BASE, list(kasumi.S9))],
        "scratch": [
            (SUBKEY_BASE, packed_subkey_words(key)),
            (S7_BASE, list(kasumi.S7)),
        ],
    }


def build_kasumi_app(
    key: bytes = DEFAULT_KASUMI_KEY,
    payload: bytes | None = None,
    base: int = 0x100,
) -> AppBundle:
    """The KASUMI application bundle (payload multiple of 8 bytes)."""
    payload = payload or bytes(range(8))
    if len(payload) % 8:
        raise ValueError("payload must be a multiple of 8 bytes")
    words = [
        int.from_bytes(payload[i : i + 4], "big")
        for i in range(0, len(payload), 4)
    ]
    image = kasumi_memory_image(key)
    image.setdefault("sdram", []).append((base, words))
    return AppBundle(
        name="kasumi",
        source=KASUMI_NOVA_SOURCE,
        memory_image=image,
        inputs={"base": base, "nblocks": len(payload) // 8},
        payload_base=base,
    )


def kasumi_reference_ciphertext(
    payload: bytes, key: bytes = DEFAULT_KASUMI_KEY
) -> list[int]:
    out = kasumi.kasumi_encrypt_payload(payload, key)
    return [int.from_bytes(out[i : i + 4], "big") for i in range(0, len(out), 4)]


def kasumi_reference_sum(payload: bytes, key: bytes = DEFAULT_KASUMI_KEY) -> int:
    words = kasumi_reference_ciphertext(payload, key)
    total = 0
    for word in words:
        total ^= word
    return total
