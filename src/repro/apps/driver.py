"""Multi-threaded application driver for throughput experiments.

The paper's measurement setup feeds packets from a hardware generator to
a 233 MHz IXP1200; worker threads synchronize with the receive/transmit
schedulers and process the stream (Section 11).  Here the simulator
plays the testbed: each hardware thread processes its own packet region
in SDRAM for a fixed number of packets, and throughput is payload bits
over simulated cycles at the IXP1200 clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import Compilation
from repro.ixp.machine import CLOCK_MHZ, Machine, RunResult
from repro.ixp.memory import MemorySystem


@dataclass
class ThroughputResult:
    run: RunResult
    payload_bytes: int
    packets: int
    threads: int

    @property
    def mbps(self) -> float:
        if self.run.cycles == 0:
            return 0.0  # zero-packet run: no time elapsed, no data moved
        seconds = self.run.cycles / (CLOCK_MHZ * 1e6)
        return self.packets * self.payload_bytes * 8 / seconds / 1e6

    @property
    def cycles_per_packet(self) -> float:
        return self.run.cycles / max(1, self.packets)


def run_physical_threads(
    comp: Compilation,
    app,
    payload_words: list[int],
    threads: int = 4,
    packets_per_thread: int = 4,
    thread_stride: int = 0x400,
    input_overrides: dict | None = None,
    decode: bool = True,
    sim_mode: str | None = None,
) -> ThroughputResult:
    """Run the allocated application over a synthetic packet stream.

    Each thread owns an SDRAM region ``base + tid * thread_stride``
    preloaded with the payload; it processes ``packets_per_thread``
    packets (one per halt iteration).  ``input_overrides`` replaces
    source-level inputs (e.g. ``nblocks``) without mutating ``app``.
    ``decode=False`` forces the reference interpreter instead of the
    pre-decoded execution path (used by the benchmark suite to measure
    the decode speedup); ``sim_mode`` names any of the three speed
    tiers explicitly (``"interp"``/``"decoded"``/``"compiled"``) and
    wins over ``decode`` when given.
    """
    assert comp.alloc is not None, "needs an allocated compilation"
    memory = MemorySystem.create()
    for space, chunks in app.memory_image.items():
        for addr, words in chunks:
            if space == "sdram" and addr >= app.payload_base:
                continue  # payload is placed per-thread below
            memory[space].load_words(addr, words)

    base = app.inputs["base"]
    for tid in range(threads):
        memory["sdram"].load_words(base + tid * thread_stride, payload_words)

    locations = comp.alloc.decoded.input_locations
    name_map = comp.inputs_by_name()

    def physical_inputs(tid: int) -> dict:
        values = dict(app.inputs)
        values.update(input_overrides or {})
        values["base"] = base + tid * thread_stride
        out: dict = {}
        for source_name, value in values.items():
            for temp in name_map.get(source_name, ()):
                loc = locations.get(temp)
                if loc is None:
                    continue
                kind, where = loc
                if kind == "reg":
                    out[(where.bank, where.index)] = value
                else:
                    memory["scratch"].load_words(where, [value])
        return out

    def provider(tid: int, iteration: int):
        if iteration >= packets_per_thread:
            return None
        return physical_inputs(tid)

    machine = Machine(
        comp.physical,
        memory=memory,
        threads=threads,
        physical=True,
        input_provider=provider,
        max_cycles=200_000_000,
        decode=decode,
        mode=sim_mode,
    )
    run = machine.run()
    packets = threads * packets_per_thread
    return ThroughputResult(
        run, len(payload_words) * 4, packets, threads
    )
