"""Pure-Python reference implementations used to validate the Nova apps."""

from repro.apps.refimpl.aes import (
    AES_SBOX,
    aes_encrypt_block,
    aes_t_tables,
    expand_key,
)
from repro.apps.refimpl.kasumi import (
    S7,
    S9,
    kasumi_encrypt_block,
    kasumi_subkeys,
)
from repro.apps.refimpl.nat import (
    internet_checksum,
    translate_ipv6_to_ipv4,
)

__all__ = [
    "AES_SBOX",
    "aes_encrypt_block",
    "aes_t_tables",
    "expand_key",
    "S7",
    "S9",
    "kasumi_encrypt_block",
    "kasumi_subkeys",
    "internet_checksum",
    "translate_ipv6_to_ipv4",
]
