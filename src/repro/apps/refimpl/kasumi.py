"""KASUMI-structured cipher reference — after 3GPP TS 35.202.

KASUMI is the 64-bit Feistel cipher of the 3GPP confidentiality (f8) and
integrity (f9) algorithms: 8 rounds; odd rounds apply FL then FO, even
rounds FO then FL; FO is a 3-round ladder of the FI function, which
mixes through two S-boxes, S9 (512 entries) and S7 (128 entries).

**Substitution note** (see DESIGN.md): the authoritative S7/S9 tables
live in the 3GPP specification, which is not available in this offline
environment.  We use deterministic synthetic permutations of the same
sizes instead.  Every structural property the compiler and the
throughput benchmarks exercise — the Feistel ladder, the FI/FO/FL
dataflow, table sizes, their placement in scratch vs SRAM, the packed
per-round subkey fetch — is preserved; only the table *contents* differ,
so this module and the Nova program remain bit-exact mirrors of each
other (which is what the tests verify).
"""

from __future__ import annotations

MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF


def _synthetic_permutation(size: int, seed: int) -> list[int]:
    """Deterministic Fisher-Yates permutation of range(size)."""
    state = seed & MASK32
    values = list(range(size))

    def next_state() -> int:
        nonlocal state
        # Numerical Recipes LCG; fixed here so tables never change.
        state = (1664525 * state + 1013904223) & MASK32
        return state

    for i in range(size - 1, 0, -1):
        j = next_state() % (i + 1)
        values[i], values[j] = values[j], values[i]
    return values


#: 7-bit S-box (stand-in for TS 35.202 S7; stored in scratch on the IXP).
S7 = _synthetic_permutation(128, seed=0x5353_0007)

#: 9-bit S-box (stand-in for TS 35.202 S9; stored in SRAM on the IXP).
S9 = _synthetic_permutation(512, seed=0x5353_0009)

#: Key-schedule constants C1..C8 (these are from the spec; they are
#: simple nibble patterns and widely reproduced).
_KASUMI_C = [0x0123, 0x4567, 0x89AB, 0xCDEF, 0xFEDC, 0xBA98, 0x7654, 0x3210]


def _rol16(value: int, count: int) -> int:
    return ((value << count) | (value >> (16 - count))) & MASK16


def fi(data: int, key: int) -> int:
    """The FI function: two S9/S7 mixing layers with key injection."""
    nine = (data >> 7) & 0x1FF
    seven = data & 0x7F
    nine = S9[nine] ^ seven
    seven = S7[seven] ^ (nine & 0x7F)
    seven ^= (key >> 9) & 0x7F
    nine ^= key & 0x1FF
    nine = S9[nine] ^ seven
    seven = S7[seven] ^ (nine & 0x7F)
    return ((seven << 9) | nine) & MASK16


def fo(data: int, ko: tuple[int, int, int], ki: tuple[int, int, int]) -> int:
    """The FO function: three FI rounds over 16-bit halves."""
    left = (data >> 16) & MASK16
    right = data & MASK16
    for j in range(3):
        temp = fi(left ^ ko[j], ki[j]) ^ right
        left = right
        right = temp
    return ((left << 16) | right) & MASK32


def fl(data: int, kl: tuple[int, int]) -> int:
    """The FL function: one-bit rotations gated by the subkeys."""
    left = (data >> 16) & MASK16
    right = data & MASK16
    right ^= _rol16(left & kl[0], 1)
    left ^= _rol16(right | kl[1], 1)
    return ((left << 16) | right) & MASK32


def kasumi_subkeys(key: bytes) -> list[dict[str, tuple[int, ...]]]:
    """Per-round subkeys KL/KO/KI (statically computed, as in the paper)."""
    if len(key) != 16:
        raise ValueError("KASUMI needs a 16-byte key")
    k = [int.from_bytes(key[2 * i : 2 * i + 2], "big") for i in range(8)]
    kp = [k[i] ^ _KASUMI_C[i] for i in range(8)]
    rounds = []
    for i in range(8):
        rounds.append(
            {
                "KL": (_rol16(k[i], 1), kp[(i + 2) % 8]),
                "KO": (
                    _rol16(k[(i + 1) % 8], 5),
                    _rol16(k[(i + 5) % 8], 8),
                    _rol16(k[(i + 6) % 8], 13),
                ),
                "KI": (kp[(i + 4) % 8], kp[(i + 3) % 8], kp[(i + 7) % 8]),
            }
        )
    return rounds


def kasumi_encrypt_words(left: int, right: int, key: bytes) -> tuple[int, int]:
    """Encrypt one 64-bit block given as two 32-bit words."""
    for i, sub in enumerate(kasumi_subkeys(key)):
        if i % 2 == 0:
            temp = fo(fl(left, sub["KL"]), sub["KO"], sub["KI"])
        else:
            temp = fl(fo(left, sub["KO"], sub["KI"]), sub["KL"])
        left, right = right ^ temp, left
    return right, left  # undo the final swap


def kasumi_encrypt_block(block: bytes, key: bytes) -> bytes:
    if len(block) != 8:
        raise ValueError("KASUMI block must be 8 bytes")
    left = int.from_bytes(block[:4], "big")
    right = int.from_bytes(block[4:], "big")
    out_l, out_r = kasumi_encrypt_words(left, right, key)
    return out_l.to_bytes(4, "big") + out_r.to_bytes(4, "big")


def kasumi_encrypt_payload(payload: bytes, key: bytes) -> bytes:
    """ECB over a multiple-of-8 payload."""
    if len(payload) % 8:
        raise ValueError("payload must be a multiple of 8 bytes")
    out = bytearray()
    for i in range(0, len(payload), 8):
        out.extend(kasumi_encrypt_block(payload[i : i + 8], key))
    return bytes(out)


def packed_subkey_words(key: bytes) -> list[int]:
    """Per-round subkeys packed two-per-word: 4 words × 8 rounds.

    Layout per round: [KL1|KL2, KO1|KO2, KO3|KI1, KI2|KI3] — the Nova
    program fetches each round's subkeys with one scratch read (paper:
    "each iteration performs one scratch read to access all the subkey
    elements").
    """
    words = []
    for sub in kasumi_subkeys(key):
        kl1, kl2 = sub["KL"]
        ko1, ko2, ko3 = sub["KO"]
        ki1, ki2, ki3 = sub["KI"]
        words.extend(
            [
                (kl1 << 16) | kl2,
                (ko1 << 16) | ko2,
                (ko3 << 16) | ki1,
                (ki2 << 16) | ki3,
            ]
        )
    return words
