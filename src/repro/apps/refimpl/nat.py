"""IPv6 → IPv4 network address translation reference.

Mirrors the paper's third benchmark (after Grosse & Lakshman, "Network
processors applied to IPv4/IPv6 transition"): the fast path receives an
IPv6 packet, translates its 40-byte header into a 20-byte IPv4 header
(so the packet start moves), maps the 128-bit addresses to 32-bit ones
through a translation table, and computes the IPv4 header checksum.

Address mapping: the IXP program hashes the IPv6 address with the hash
unit and looks the IPv4 address up in an SRAM table indexed by the low
bits of the hash (a direct-mapped translation cache).  This module
reproduces that, using the simulator's hash function so the two stay
bit-exact.
"""

from __future__ import annotations

from repro.ixp.machine import hash48

MASK32 = 0xFFFFFFFF

#: Number of entries in the direct-mapped translation table.
NAT_TABLE_SIZE = 256
#: Each entry is one word: the mapped IPv4 address.
NAT_TABLE_WORDS = NAT_TABLE_SIZE


def internet_checksum(words: list[int]) -> int:
    """RFC 1071 ones'-complement checksum over 32-bit words."""
    total = 0
    for word in words:
        total += (word >> 16) & 0xFFFF
        total += word & 0xFFFF
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def nat_table_index(ipv6_addr_words: list[int]) -> int:
    """Table slot for an IPv6 address: hash unit over the XOR-folded
    address, low bits select the entry."""
    folded = 0
    for word in ipv6_addr_words:
        folded ^= word
    return hash48(folded) % NAT_TABLE_SIZE


def build_nat_table(
    mappings: dict[tuple[int, int, int, int], int],
) -> list[int]:
    """Direct-mapped table image: one IPv4 word per slot."""
    table = [0] * NAT_TABLE_SIZE
    for ipv6, ipv4 in mappings.items():
        table[nat_table_index(list(ipv6))] = ipv4 & MASK32
    return table


def parse_ipv6_header(words: list[int]) -> dict[str, int | list[int]]:
    """Spread an IPv6 header (10 words) into fields."""
    if len(words) != 10:
        raise ValueError("IPv6 header is 10 words")
    return {
        "version": (words[0] >> 28) & 0xF,
        "traffic_class": (words[0] >> 20) & 0xFF,
        "flow_label": words[0] & 0xFFFFF,
        "payload_length": (words[1] >> 16) & 0xFFFF,
        "next_header": (words[1] >> 8) & 0xFF,
        "hop_limit": words[1] & 0xFF,
        "src": words[2:6],
        "dst": words[6:10],
    }


def translate_ipv6_to_ipv4(
    ipv6_words: list[int], table: list[int]
) -> list[int]:
    """The translation: 10 IPv6 header words → 5 IPv4 header words.

    Field mapping (per the IPv4 header format):
      version=4, ihl=5, tos = traffic class, total_length = payload + 20,
      identification=0, flags=DF, ttl = hop limit, protocol = next header,
      checksum = RFC 1071 over the header, addresses via the table.
    """
    h = parse_ipv6_header(ipv6_words)
    src4 = table[nat_table_index(h["src"])]
    dst4 = table[nat_table_index(h["dst"])]
    total_length = (h["payload_length"] + 20) & 0xFFFF
    word0 = (4 << 28) | (5 << 24) | (h["traffic_class"] << 16) | total_length
    word1 = (0 << 16) | (0x4000)  # identification 0, DF flag
    word2 = (h["hop_limit"] << 24) | (h["next_header"] << 16)  # cksum 0
    header = [word0, word1, word2, src4, dst4]
    checksum = internet_checksum(header)
    header[2] |= checksum
    return header
