"""``repro.batch`` — compile many Nova programs as one failure-tolerant job.

The paper's compiler is batch-oriented: one program, one multi-second
ILP solve.  This module turns :func:`repro.compiler.compile_nova` into a
throughput-oriented pipeline: :func:`compile_many` fans a list of
sources out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs`` workers; ``jobs=1`` stays in-process), routes every unit
through the content-addressed :class:`repro.cache.CompileCache` when a
cache directory is given, and collects a structured per-unit record —
artifact or error — instead of dying on the first :class:`NovaError`.

Tracing threads through both layers: each unit compiles under its own
:class:`repro.trace.Tracer` (workers ship their spans back as picklable
data) and the driver adopts them under a ``unit`` span nested in the
job-level ``batch`` span, so ``novac --jobs 4 --trace`` renders one
coherent table for the whole job.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.cache import CompileCache, cached_compile
from repro.compiler import Compilation, CompileOptions
from repro.errors import NovaError
from repro.trace import Tracer, ensure


@dataclass
class BatchError:
    """A structured compile failure (picklable, renderable)."""

    kind: str
    message: str
    location: str | None = None

    @staticmethod
    def from_exception(exc: BaseException) -> "BatchError":
        if isinstance(exc, NovaError):
            return BatchError(
                kind=type(exc).__name__,
                message=exc.message,
                location=str(exc.span) if exc.span is not None else None,
            )
        return BatchError(kind=type(exc).__name__, message=str(exc))

    def __str__(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.message} [{self.kind}]"


@dataclass
class BatchUnit:
    """Outcome of compiling one source in the batch."""

    name: str
    ok: bool
    compilation: Compilation | None
    error: BatchError | None
    seconds: float
    #: 'hit' | 'miss' when a cache directory was given, else 'off'.
    cache: str = "off"


@dataclass
class BatchResult:
    units: list[BatchUnit]
    seconds: float
    jobs: int
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> list[BatchUnit]:
        return [u for u in self.units if u.ok]

    @property
    def failed(self) -> list[BatchUnit]:
        return [u for u in self.units if not u.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for u in self.units if u.cache == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for u in self.units if u.cache == "miss")

    def summary(self) -> dict[str, object]:
        out = {
            "units": len(self.units),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
            "seconds": round(self.seconds, 6),
        }
        if self.cache_stats:
            #: full worker-side CacheStats aggregate (hits / misses /
            #: writes / invalidations), not just the per-unit outcomes.
            out["cache"] = dict(self.cache_stats)
        return out


def _normalize(sources: Iterable) -> list[tuple[str, str | None]]:
    """Each source is a path (read lazily in the worker) or (name, text)."""
    items: list[tuple[str, str | None]] = []
    for entry in sources:
        if isinstance(entry, (str, Path)):
            items.append((str(entry), None))
        else:
            name, text = entry
            items.append((str(name), text))
    return items


def _compile_unit(
    name: str,
    text: str | None,
    options: CompileOptions,
    cache_dir: str | None,
    trace: bool,
    keep_artifacts: bool,
) -> tuple[BatchUnit, list, dict]:
    """One unit of work; runs in-process or inside a pool worker.

    Never raises: every failure — unreadable file, any compile-phase
    :class:`NovaError`, even an unexpected internal error — comes back
    as a :class:`BatchError` so the rest of the batch proceeds.

    Returns ``(unit, spans, cache_stats)``; the stats dict carries the
    worker-side :class:`repro.cache.CacheStats` counters so the driver
    can aggregate hits/misses/writes/invalidations across the pool.
    """
    tracer = Tracer() if trace else None
    span_source = ensure(tracer)
    cache = None
    start = time.perf_counter()
    with span_source.span("unit", file=name) as sp:
        try:
            if text is None:
                with open(name) as handle:
                    text = handle.read()
            cache = (
                CompileCache(cache_dir, tracer) if cache_dir is not None else None
            )
            compilation, cache_state = cached_compile(
                text, name, options, cache, tracer
            )
        except Exception as exc:
            unit = BatchUnit(
                name=name,
                ok=False,
                compilation=None,
                error=BatchError.from_exception(exc),
                seconds=time.perf_counter() - start,
            )
            if sp:
                sp.add(outcome=f"error:{unit.error.kind}")
            return (
                unit,
                list(span_source.spans) if tracer else [],
                cache.stats.as_dict() if cache is not None else {},
            )
        unit = BatchUnit(
            name=name,
            ok=True,
            compilation=compilation.slim() if keep_artifacts else None,
            error=None,
            seconds=time.perf_counter() - start,
            cache=cache_state,
        )
        if sp:
            sp.add(outcome="ok", cache=cache_state)
    return (
        unit,
        list(span_source.spans) if tracer else [],
        cache.stats.as_dict() if cache is not None else {},
    )


def default_jobs() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


def scatter(
    worker, arg_tuples: Sequence[tuple], jobs: int = 1, pool=None
) -> list:
    """Run ``worker(*args)`` for every tuple; results in input order.

    The generic fan-out underneath :func:`compile_many`, also reused by
    the fuzz campaign driver (:mod:`repro.fuzz.driver`).  ``jobs == 1``
    (or a single item) stays in-process; otherwise the work is spread
    over a :class:`ProcessPoolExecutor`, so ``worker`` must be a
    module-level function and the argument tuples picklable.  Workers
    are expected to catch their own exceptions and return structured
    error records — a raise here propagates and kills the whole job.

    ``pool`` submits to an existing executor instead of forking a fresh
    one (``jobs`` is then ignored and the pool is left running): the
    compile daemon, ``novac fuzz`` and ``novac pump --chips`` reuse one
    warm pool across calls rather than paying per-call fork + import.
    """
    if pool is not None:
        futures = [pool.submit(worker, *args) for args in arg_tuples]
        return [future.result() for future in futures]
    jobs = max(1, int(jobs))
    if jobs == 1 or len(arg_tuples) <= 1:
        return [worker(*args) for args in arg_tuples]
    with ProcessPoolExecutor(max_workers=min(jobs, len(arg_tuples))) as pool:
        futures = [pool.submit(worker, *args) for args in arg_tuples]
        return [future.result() for future in futures]


def merge_cache_stats(total: dict[str, int], stats: dict[str, int]) -> None:
    """Accumulate one worker's :class:`CacheStats` dict into ``total``."""
    for key, value in stats.items():
        total[key] = total.get(key, 0) + value


def compile_many(
    sources: Sequence,
    jobs: int = 1,
    options: CompileOptions | None = None,
    cache_dir: str | Path | None = None,
    tracer=None,
    keep_artifacts: bool = True,
    pool=None,
) -> BatchResult:
    """Compile every source; never raises on a per-unit compile failure.

    ``sources`` mixes file paths and ``(name, source_text)`` pairs.
    ``jobs > 1`` fans units out over a process pool; results come back
    in input order regardless.  With ``keep_artifacts=False`` the
    (potentially large) :class:`Compilation` objects are dropped in the
    workers — the CLI's batch summary only needs the outcome records.
    ``pool`` reuses an existing executor (see :func:`scatter`).
    """
    options = options or CompileOptions()
    tracer = ensure(tracer)
    items = _normalize(sources)
    cache_dir = str(cache_dir) if cache_dir is not None else None
    jobs = max(1, int(jobs))
    if pool is not None:
        jobs = getattr(pool, "_max_workers", jobs)
    start = time.perf_counter()
    with tracer.span("batch", sources=len(items), jobs=jobs) as sp:
        outcomes = scatter(
            _compile_unit,
            [
                (name, text, options, cache_dir, tracer.enabled, keep_artifacts)
                for name, text in items
            ],
            jobs,
            pool=pool,
        )
        units = []
        cache_stats: dict[str, int] = {}
        for unit, spans, worker_stats in outcomes:
            units.append(unit)
            tracer.adopt(spans, parent="batch")
            merge_cache_stats(cache_stats, worker_stats)
        seconds = time.perf_counter() - start
        if sp:
            sp.add(
                ok=sum(1 for u in units if u.ok),
                failed=sum(1 for u in units if not u.ok),
                cache_hits=sum(1 for u in units if u.cache == "hit"),
                cache_misses=sum(1 for u in units if u.cache == "miss"),
            )
    return BatchResult(
        units=units, seconds=seconds, jobs=jobs, cache_stats=cache_stats
    )
