"""``repro.trace`` — structured tracing and metrics for the pipeline.

The paper's whole evaluation (Figures 5-7) is *measured* compiler
behaviour: static program statistics, AMPL/ILP model sizes, CPLEX
root-relaxation vs. integer-optimality times.  This module is the
single place those measurements come from.  Every pipeline phase
records a :class:`Span` — a name, a wall-clock duration, and a flat
dictionary of phase-specific counters (IR sizes, model rows/columns,
solver nodes, per-opcode cycle histograms) — onto a :class:`Tracer`.

Consumers:

- ``novac --trace`` renders the spans as a human-readable table;
- ``novac --trace-json FILE`` writes one JSON object per span per line;
- ``benchmarks/`` derives the Figure 5-7 tables from the same spans.

Tracing is strictly opt-in.  When no tracer is supplied, callers get
:data:`NULL`, whose span handles are falsy no-ops, so instrumented code
pays only an attribute check::

    with tracer.span("optimize") as sp:
        term = run_passes(term)
        if sp:                       # False on the null tracer
            sp.add(term_nodes=expensive_count(term))

Span handles stay usable after their ``with`` block exits (the span is
already recorded; ``add`` mutates its counters in place), which lets a
caller attach summary counters computed from the phase's result.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced phase: wall time plus phase-specific counters."""

    name: str
    #: seconds since the tracer was created (orders spans for display).
    start: float
    #: wall-clock duration; filled in when the ``with`` block exits.
    seconds: float = 0.0
    #: enclosing span's name, or None at top level.
    parent: str | None = None
    #: nesting depth (0 = top level); purely presentational.
    depth: int = 0
    #: flat metric dict: int/float/str values only (JSON-friendly).
    counters: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        counters = {
            key: (None if isinstance(value, float) and not math.isfinite(value) else value)
            for key, value in self.counters.items()
        }
        return {
            "name": self.name,
            "parent": self.parent,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "counters": counters,
        }


def span_from_dict(data: dict) -> Span:
    """Rebuild a :class:`Span` from :meth:`Span.as_dict` output.

    The inverse used when spans cross a process boundary as JSON (the
    ``novac serve`` daemon ships per-request spans back to the client,
    which adopts them into its local tracer for ``--trace``).  Depth is
    not serialized; :meth:`Tracer.adopt` recomputes the presentation
    shift, so rebuilt spans start at depth 0.
    """
    return Span(
        data["name"],
        start=float(data.get("start", 0.0)),
        seconds=float(data.get("seconds", 0.0)),
        parent=data.get("parent"),
        counters=dict(data.get("counters") or {}),
    )


def log2_bound(value: float) -> int:
    """Smallest power of two >= ``value`` (1 for values <= 1).

    The single definition of the log2 histogram bucketing used by both
    :meth:`SpanHandle.bucket` (trace spans) and
    :meth:`repro.ixp.net.StreamResult.latency_histogram` (run
    summaries), so values <= 1 and exact powers of two land in the same
    bucket everywhere.
    """
    bound = 1
    while bound < value:
        bound <<= 1
    return bound


class SpanHandle:
    """Context manager recording one span; truthy iff actually recording."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._t0 = time.perf_counter()

    def add(self, **counters: object) -> "SpanHandle":
        """Set (overwrite) counters on the span."""
        self.span.counters.update(counters)
        return self

    def tally(self, key: str, amount: float = 1) -> "SpanHandle":
        """Accumulate into one counter."""
        counters = self.span.counters
        counters[key] = counters.get(key, 0) + amount
        return self

    def bucket(self, key: str, value: float) -> "SpanHandle":
        """Tally ``value`` into a power-of-two histogram counter.

        Records under ``<key>.le_<2^k>`` for the smallest ``2^k >=
        value`` (``<key>.le_1`` for values <= 1), so a span accumulates
        a compact log2 latency/size histogram without the caller
        keeping one.
        """
        return self.tally(f"{key}.le_{log2_bound(value)}")

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "SpanHandle":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.span.seconds = time.perf_counter() - self._t0
        self._tracer._exit_span(self.span)
        return False


class _NullHandle:
    """Falsy do-nothing stand-in for :class:`SpanHandle`."""

    __slots__ = ()
    span = None

    def add(self, **counters: object) -> "_NullHandle":
        return self

    def tally(self, key: str, amount: float = 1) -> "_NullHandle":
        return self

    def bucket(self, key: str, value: float) -> "_NullHandle":
        return self

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects spans; one per pipeline phase/sub-phase."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[str] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **counters: object) -> SpanHandle:
        """Open a span; use as ``with tracer.span("parse") as sp:``.

        Spans are appended at entry, so ``self.spans`` is ordered by
        start time; nested calls record their enclosing span as
        ``parent``.
        """
        sp = Span(
            name,
            start=time.perf_counter() - self._epoch,
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            counters=dict(counters),
        )
        self.spans.append(sp)
        self._stack.append(name)
        return SpanHandle(self, sp)

    def _exit_span(self, span: Span) -> None:
        self._stack.pop()

    def adopt(self, spans, parent: str | None = None) -> None:
        """Append spans recorded by another tracer (e.g. a pool worker).

        Batch compilation runs each unit under its own tracer — possibly
        in a worker process — and merges the recorded spans back into
        the driver's tracer afterwards.  Top-level foreign spans are
        re-parented under ``parent`` (matched by name against the most
        recent span on this tracer) and every span's depth is shifted so
        the table renders the adopted subtree nested in place.
        """
        shift = 0
        if parent is not None:
            shift = next(
                (s.depth + 1 for s in reversed(self.spans) if s.name == parent),
                0,
            )
        for foreign in spans:
            self.spans.append(
                Span(
                    foreign.name,
                    start=foreign.start,
                    seconds=foreign.seconds,
                    parent=foreign.parent if foreign.parent is not None else parent,
                    depth=foreign.depth + shift,
                    counters=dict(foreign.counters),
                )
            )

    # -- lookup --------------------------------------------------------------

    def all(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def get(self, name: str) -> Span | None:
        """First span with this name (chronological)."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def last(self, name: str) -> Span | None:
        """Last span with this name (e.g. the phase-2 solve in two-phase)."""
        for s in reversed(self.spans):
            if s.name == name:
                return s
        return None

    # -- rendering -----------------------------------------------------------

    def table(self) -> str:
        """Human-readable per-phase table (``novac --trace``)."""
        lines = [f"{'phase':<22} {'ms':>10}  counters"]
        for s in self.spans:
            name = "  " * s.depth + s.name
            counters = "  ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(s.counters.items())
            )
            lines.append(f"{name:<22} {s.seconds * 1000:>10.2f}  {counters}")
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per span per line, in start order."""
        return "\n".join(json.dumps(s.as_dict()) for s in self.spans) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


class NullTracer:
    """The no-op recorder: zero overhead beyond one attribute check."""

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **counters: object) -> _NullHandle:
        return _NULL_HANDLE

    def adopt(self, spans, parent: str | None = None) -> None:
        pass

    def all(self, name: str) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def last(self, name: str) -> None:
        return None

    def table(self) -> str:
        return ""

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write("")


#: Shared no-op tracer; the default everywhere a tracer is accepted.
NULL = NullTracer()


def ensure(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument."""
    return NULL if tracer is None else tracer


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
