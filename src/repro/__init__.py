"""Reproduction of "Taming the IXP Network Processor" (PLDI 2003).

This package implements the Nova programming language and its compiler:
a CPS-based front end, a static-single-use transform, and an ILP-based
back end that solves register-bank assignment, transfer-register coloring
of aggregates, inter-bank move placement and spilling as one 0-1 integer
linear program targeting the Intel IXP1200 micro-engine (which we also
model, together with its memories, as a cycle-approximate simulator).

Public API
----------
- :func:`compile_nova` — compile Nova source text end-to-end.
- :class:`repro.compiler.Compiler` — the staged driver with per-phase
  artifacts and statistics.
- :mod:`repro.nova` — language front end (lexer/parser/types/layouts).
- :mod:`repro.cps` — CPS intermediate representation and optimizer.
- :mod:`repro.ixp` — IXP1200 instruction set, flowgraph and simulator.
- :mod:`repro.ilp` — the AMPL-substitute ILP modeling layer and solvers.
- :mod:`repro.alloc` — the paper's allocator (Sections 5-10) plus the
  heuristic baseline and the constant-rematerialization extension.
- :mod:`repro.apps` — the three benchmark applications (AES, Kasumi, NAT).

The heavyweight driver is imported lazily so that individual subsystems
(e.g. the parser alone) can be used without pulling in scipy.
"""

from typing import Any

__all__ = ["Compiler", "CompileOptions", "compile_nova"]

__version__ = "1.0.0"


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro import compiler

        return getattr(compiler, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
